// Command memcachedd serves the repository's memcached engine over TCP
// using the memcached binary protocol — the stand-alone form of the
// key-value store the burst buffer is built on. It interoperates with any
// binary-protocol memcached client.
//
// Usage:
//
//	memcachedd -addr :11211 -mem-mb 512 -max-item-kb 1024
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"time"

	"hbb/internal/memcached"
	"hbb/internal/memcached/mcserver"
)

func main() {
	var (
		addr      = flag.String("addr", "127.0.0.1:11211", "listen address")
		memMB     = flag.Int64("mem-mb", 256, "item memory budget (MiB), like memcached -m")
		maxItemKB = flag.Int("max-item-kb", 1024, "max item size (KiB), like memcached -I")
		shards    = flag.Int("shards", 0, "engine shard count, rounded up to a power of two (0 = GOMAXPROCS)")
		drain     = flag.Duration("drain", 5*time.Second, "how long shutdown waits for in-flight connections")
	)
	flag.Parse()

	srv := mcserver.New(memcached.Config{
		MemLimit:    *memMB << 20,
		MaxItemSize: *maxItemKB << 10,
		Shards:      *shards,
	})
	go func() {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt)
		<-sig
		fmt.Fprintln(os.Stderr, "memcachedd: shutting down")
		srv.Stop(*drain)
	}()
	log.Printf("memcachedd: %s listening on %s (mem %d MiB, max item %d KiB, %d shards)",
		mcserver.Version, *addr, *memMB, *maxItemKB, srv.Engine().NumShards())
	if err := srv.ListenAndServe(*addr); err != nil {
		log.Fatal(err)
	}
}
