// Command benchjson converts `go test -bench` output into a JSON summary.
// It tees its stdin to stdout (so the raw benchmark log stays visible) and
// writes the parsed results to -out, recording the host context Go prints
// (goos/goarch/pkg/cpu) alongside each measurement.
//
// Usage:
//
//	go test -bench=. -benchmem ./... | benchjson -out BENCH_2.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"
)

// Benchmark is one parsed result line.
type Benchmark struct {
	Name    string             `json:"name"`
	Package string             `json:"package,omitempty"`
	Runs    int64              `json:"runs"`
	Metrics map[string]float64 `json:"metrics"` // unit → value, e.g. "ns/op": 133.5
}

// Report is the JSON document benchjson emits.
type Report struct {
	GOOS       string      `json:"goos,omitempty"`
	GOARCH     string      `json:"goarch,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Note       string      `json:"note,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	out := flag.String("out", "BENCH.json", "output JSON path")
	note := flag.String("note", "", "free-form context recorded in the report (hardware caveats etc.)")
	flag.Parse()

	rep := Report{Note: *note, Benchmarks: []Benchmark{}}
	pkg := ""
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line)
		switch {
		case strings.HasPrefix(line, "goos: "):
			rep.GOOS = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			rep.GOARCH = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "cpu: "):
			rep.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "pkg: "):
			pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "Benchmark"):
			if b, ok := parseBench(line); ok {
				b.Package = pkg
				rep.Benchmarks = append(rep.Benchmarks, b)
			}
		}
	}
	if err := sc.Err(); err != nil {
		log.Fatalf("benchjson: read: %v", err)
	}
	data, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		log.Fatalf("benchjson: encode: %v", err)
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		log.Fatalf("benchjson: write: %v", err)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmarks to %s\n", len(rep.Benchmarks), *out)
}

// parseBench decodes one result line:
//
//	BenchmarkName-8   123456   133.5 ns/op   15 B/op   0 allocs/op
//
// Fields after the iteration count come in value/unit pairs.
func parseBench(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || len(fields)%2 != 0 {
		return Benchmark{}, false
	}
	runs, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Name: fields[0], Runs: runs, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		b.Metrics[fields[i+1]] = v
	}
	return b, true
}
