// Command mccluster launches a replicated memcached serving cluster on
// loopback TCP and (optionally) drives it with an open-loop swarm of
// zipfian clients — the socket-level companion to the simulated fleet:
// same arrival and key-popularity math, real kernel sockets.
//
// Serve mode keeps N servers up until interrupted, printing the address
// list so external clients can point a cluster-aware client at them:
//
//	mccluster -servers 3 -replicas 2 -mem-mb 64
//
// Swarm mode adds a load generation phase and reports achieved req/s,
// front-cache hit rate, shed fraction, and failover counts:
//
//	mccluster -swarm -servers 3 -replicas 2 -clients 1000 -qps 50000 \
//	    -keys 1000000 -zipf 1.1 -duration 10s -max-inflight 512
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"hbb/internal/memcached"
	"hbb/internal/memcached/mcclient"
	"hbb/internal/memcached/mccluster"
	"hbb/internal/swarm"
)

func main() {
	var (
		servers  = flag.Int("servers", 3, "number of memcached servers to launch")
		replicas = flag.Int("replicas", 2, "copies of each key (clamped to -servers)")
		memMB    = flag.Int64("mem-mb", 64, "per-server item memory budget (MiB)")

		doSwarm     = flag.Bool("swarm", false, "drive the cluster with an open-loop load phase, then exit")
		clients     = flag.Int("clients", 1000, "swarm: open-loop client population")
		qps         = flag.Float64("qps", 50000, "swarm: aggregate target request rate")
		keys        = flag.Int("keys", 1_000_000, "swarm: distinct key population")
		zipf        = flag.Float64("zipf", 1.1, "swarm: key popularity skew (0 = uniform, else > 1)")
		valueBytes  = flag.Int("value-bytes", 64, "swarm: value size for sets")
		setFrac     = flag.Float64("set-frac", 0.1, "swarm: fraction of requests that are sets")
		duration    = flag.Duration("duration", 10*time.Second, "swarm: load phase length")
		seed        = flag.Int64("seed", 1, "swarm: generator seed")
		maxInflight = flag.Int("max-inflight", 0, "admission control bound (0 = unlimited)")

		frontCache = flag.Int("front-cache", 4096, "front-cache entries (0 = disabled)")
		fcTTL      = flag.Duration("front-cache-ttl", 100*time.Millisecond, "front-cache entry TTL")
		noSpread   = flag.Bool("no-read-spread", false, "disable replica read spreading for hot keys")
	)
	flag.Parse()

	local, err := mccluster.LaunchLocal(*servers, memcached.Config{MemLimit: *memMB << 20})
	if err != nil {
		log.Fatal(err)
	}
	defer local.Close()
	opts := mccluster.Options{
		Replicas:       *replicas,
		MaxInflight:    int64(*maxInflight),
		FrontCacheSize: *frontCache,
		FrontCacheTTL:  *fcTTL,
		NoFrontCache:   *frontCache == 0,
		NoReadSpread:   *noSpread,
	}
	cluster, err := mccluster.New(local.Addrs(), opts)
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	log.Printf("mccluster: %d servers, R=%d, %d MiB each", *servers, *replicas, *memMB)
	for i, a := range local.Addrs() {
		log.Printf("  server %d: %s", i, a)
	}

	if !*doSwarm {
		log.Printf("mccluster: serving until interrupt")
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt)
		<-sig
		return
	}

	if err := runSwarm(cluster, *clients, *qps, *keys, *zipf, *valueBytes, *setFrac, *duration, *seed); err != nil {
		log.Fatal(err)
	}
}

// runSwarm replays the open-loop arrival stream against the cluster in
// real time. Dispatch is asynchronous through a worker pool so a slow
// response never closes the loop; when the pool is saturated the request
// is counted as dropped at the generator, mirroring what an overloaded
// kernel accept queue would do.
func runSwarm(c *mccluster.Cluster, clients int, qps float64, keys int, skew float64,
	valueBytes int, setFrac float64, duration time.Duration, seed int64) error {
	gen, err := swarm.NewOpenLoop(clients, qps, keys, skew, seed)
	if err != nil {
		return err
	}
	value := make([]byte, valueBytes)
	for i := range value {
		value[i] = byte('a' + i%26)
	}

	type req struct {
		key   int
		isSet bool
	}
	var (
		issued, ok, failed, shed, dropped atomic.Int64
		wg                                sync.WaitGroup
	)
	// Worker pool sized for a pipelined client per server plus headroom;
	// the queue absorbs arrival bursts.
	workers := 4 * c.Replicas() * len(c.Addrs())
	if workers < 32 {
		workers = 32
	}
	queue := make(chan req, 4096)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := range queue {
				key := "swarm:" + strconv.Itoa(r.key)
				var err error
				if r.isSet {
					_, err = c.Set(&mcclient.Item{Key: key, Value: value})
				} else {
					_, err = c.Get(key)
					if mcclient.IsNotFound(err) {
						err = nil // cold key: a miss, not a failure
					}
				}
				switch {
				case err == nil:
					ok.Add(1)
				case mccluster.IsOverload(err):
					shed.Add(1)
				default:
					failed.Add(1)
				}
			}
		}()
	}

	log.Printf("mccluster: swarm %d clients, %.0f req/s target, %d keys, zipf %g, %s",
		clients, qps, keys, skew, duration)
	start := time.Now()
	deadline := start.Add(duration)
	setMod := int64(1 << 30)
	if setFrac > 0 {
		setMod = int64(1 / setFrac)
	}
	for {
		at, key := gen.Next()
		when := start.Add(time.Duration(at))
		if when.After(deadline) {
			break
		}
		if d := time.Until(when); d > 0 {
			time.Sleep(d)
		}
		n := issued.Add(1)
		r := req{key: key, isSet: setFrac > 0 && n%setMod == 0}
		select {
		case queue <- r:
		default:
			dropped.Add(1) // generator-side drop: the pool is saturated
		}
	}
	close(queue)
	wg.Wait()
	elapsed := time.Since(start)

	st := c.Stats()
	completed := ok.Load() + failed.Load() + shed.Load()
	fmt.Printf("\nswarm report (%.2fs wall):\n", elapsed.Seconds())
	fmt.Printf("  issued            %10d (%.0f req/s target)\n", issued.Load(), qps)
	fmt.Printf("  completed         %10d (%.0f req/s achieved)\n", completed, float64(completed)/elapsed.Seconds())
	fmt.Printf("  ok / failed       %10d / %d\n", ok.Load(), failed.Load())
	fmt.Printf("  shed (admission)  %10d (%.2f%% of completed)\n", shed.Load(), pct(shed.Load(), completed))
	fmt.Printf("  dropped (genside) %10d\n", dropped.Load())
	fmt.Printf("  front-cache hits  %10d (%.2f%% of gets)\n", st.FrontCacheHits, st.HitRate()*100)
	fmt.Printf("  hot gets          %10d, spread reads %d\n", st.HotGets, st.SpreadReads)
	fmt.Printf("  failovers         %10d, repairs %d, replica errors %d\n", st.Failovers, st.Repairs, st.ReplicaErrors)
	if hot := c.HotKeys(5); len(hot) > 0 {
		fmt.Printf("  hottest keys      %v\n", hot)
	}
	return nil
}

func pct(n, total int64) float64 {
	if total == 0 {
		return 0
	}
	return 100 * float64(n) / float64(total)
}
