// Command bbench regenerates the paper's figures and tables. Each
// experiment builds fresh simulated testbeds, runs the paper's workloads
// on every backend, and prints a table whose rows mirror the published
// figure's series.
//
// Usage:
//
//	bbench -list
//	bbench -experiment fig3 -scale full
//	bbench -experiment all -scale small
//	bbench -experiment fig3 -backends hdfs,lustre,bb-adaptive
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"hbb"
)

func main() {
	var (
		id       = flag.String("experiment", "all", "experiment id (fig1..fig10, tab1..tab5) or 'all'")
		scale    = flag.String("scale", "small", "sizing: 'small' (quick) or 'full' (paper-scale)")
		list     = flag.Bool("list", false, "list experiments and exit")
		backends = flag.String("backends", "", "comma-separated backends the macro-benchmarks compare (default: the paper's five; registered: "+strings.Join(hbb.BackendNames(), ",")+")")
	)
	flag.Parse()

	if *backends != "" {
		var bs []hbb.Backend
		for _, name := range strings.Split(*backends, ",") {
			b, err := hbb.ParseBackend(strings.TrimSpace(name))
			if err != nil {
				fmt.Fprintln(os.Stderr, "bbench:", err)
				flag.Usage()
				os.Exit(2)
			}
			bs = append(bs, b)
		}
		hbb.CompareBackends(bs)
	}

	if *list {
		for _, e := range hbb.Experiments() {
			fmt.Printf("%-5s %s\n      claim: %s\n", e.ID, e.Title, e.Claim)
		}
		return
	}
	sc := hbb.Scale(*scale)
	if sc != hbb.ScaleSmall && sc != hbb.ScaleFull {
		fmt.Fprintf(os.Stderr, "bbench: unknown scale %q\n", *scale)
		os.Exit(2)
	}
	run := func(e hbb.Experiment) {
		start := time.Now()
		table := e.Run(sc)
		fmt.Printf("# %s — %s\n# claim: %s\n%s# (generated in %.1fs wall time, scale=%s)\n\n",
			e.ID, e.Title, e.Claim, table, time.Since(start).Seconds(), sc)
	}
	if *id == "all" {
		for _, e := range hbb.Experiments() {
			run(e)
		}
		return
	}
	e, ok := hbb.ExperimentByID(*id)
	if !ok {
		fmt.Fprintf(os.Stderr, "bbench: unknown experiment %q (try -list)\n", *id)
		os.Exit(2)
	}
	run(e)
}
