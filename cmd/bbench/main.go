// Command bbench regenerates the paper's figures and tables. Each
// experiment builds fresh simulated testbeds, runs the paper's workloads
// on every backend, and prints a table whose rows mirror the published
// figure's series.
//
// Usage:
//
//	bbench -list
//	bbench -experiment fig3 -scale full
//	bbench -experiment all -scale small
//	bbench -experiment fig3 -backends hdfs,lustre,bb-adaptive
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"sync"
	"time"

	"hbb"
	"hbb/internal/profiling"
)

func main() {
	var (
		id       = flag.String("experiment", "all", "experiment id (fig1..fig10, tab1..tab8) or 'all'")
		scale    = flag.String("scale", "small", "sizing: 'small' (quick) or 'full' (paper-scale)")
		list     = flag.Bool("list", false, "list experiments and exit")
		backends = flag.String("backends", "", "comma-separated backends the macro-benchmarks compare (default: the paper's five; registered: "+strings.Join(hbb.BackendNames(), ",")+")")
		parallel = flag.Int("parallel", 1, "worker goroutines for experiment cells; with -experiment all, whole experiments also run concurrently. Each cell is an independent seeded simulation, so output is identical at any value")
		shards   = flag.Int("shards", 0, "pin tab8's fleet-mode shard axis to this single value (0 sweeps the default {1, N}); the trace is shard-count-invariant, only wall-clock changes")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf  = flag.String("memprofile", "", "write an allocation profile to this file on exit")
	)
	flag.Parse()
	hbb.SetParallelism(*parallel)
	hbb.SetFleetShards(*shards)

	stopCPU, err := profiling.StartCPU(*cpuProf)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bbench:", err)
		os.Exit(1)
	}
	defer stopCPU()
	defer func() {
		if err := profiling.WriteHeap(*memProf); err != nil {
			fmt.Fprintln(os.Stderr, "bbench:", err)
		}
	}()

	if *backends != "" {
		var bs []hbb.Backend
		for _, name := range strings.Split(*backends, ",") {
			b, err := hbb.ParseBackend(strings.TrimSpace(name))
			if err != nil {
				fmt.Fprintln(os.Stderr, "bbench:", err)
				flag.Usage()
				os.Exit(2)
			}
			bs = append(bs, b)
		}
		hbb.CompareBackends(bs)
	}

	if *list {
		for _, e := range hbb.Experiments() {
			fmt.Printf("%-5s %s\n      claim: %s\n", e.ID, e.Title, e.Claim)
		}
		return
	}
	sc := hbb.Scale(*scale)
	if sc != hbb.ScaleSmall && sc != hbb.ScaleFull {
		fmt.Fprintf(os.Stderr, "bbench: unknown scale %q\n", *scale)
		os.Exit(2)
	}
	render := func(e hbb.Experiment) string {
		start := time.Now()
		table := e.Run(sc)
		return fmt.Sprintf("# %s — %s\n# claim: %s\n%s# (generated in %.1fs wall time, scale=%s)\n\n",
			e.ID, e.Title, e.Claim, table, time.Since(start).Seconds(), sc)
	}
	run := func(e hbb.Experiment) { fmt.Print(render(e)) }
	if *id == "all" {
		exps := hbb.Experiments()
		if *parallel > 1 {
			// Render whole experiments concurrently, then print in paper
			// order so the report is identical to a serial run.
			outputs := make([]string, len(exps))
			var (
				mu   sync.Mutex
				next int
			)
			var wg sync.WaitGroup
			workers := *parallel
			if workers > len(exps) {
				workers = len(exps)
			}
			wg.Add(workers)
			for w := 0; w < workers; w++ {
				go func() {
					defer wg.Done()
					for {
						mu.Lock()
						i := next
						next++
						mu.Unlock()
						if i >= len(exps) {
							return
						}
						outputs[i] = render(exps[i])
					}
				}()
			}
			wg.Wait()
			for _, out := range outputs {
				fmt.Print(out)
			}
			return
		}
		for _, e := range exps {
			run(e)
		}
		return
	}
	e, ok := hbb.ExperimentByID(*id)
	if !ok {
		fmt.Fprintf(os.Stderr, "bbench: unknown experiment %q (try -list)\n", *id)
		os.Exit(2)
	}
	run(e)
}
