// Command bbrun executes one workload on one storage backend of the
// simulated testbed and prints its metrics — the single-run companion to
// bbench's full sweeps.
//
// Usage:
//
//	bbrun -workload dfsio-write -backend bb-async -nodes 8 -files 32 -size-mb 1024
//	bbrun -workload sort -backend lustre -size-mb 8192
//	bbrun -fleet -swarm -nodes 240 -clients 100000 -qps 1e7 -zipf 1.1 -shards 4
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"hbb"
	"hbb/internal/profiling"
)

func main() {
	var (
		workload = flag.String("workload", "dfsio-write", "dfsio-write | dfsio-read | randomwriter | sort | scan (with -fleet: dfsio-write | stress)")
		backend  = flag.String("backend", "bb-async", "storage backend: "+strings.Join(hbb.BackendNames(), " | "))
		nodes    = flag.Int("nodes", 8, "compute nodes")
		files    = flag.Int("files", 0, "files/maps (default: 4 per node)")
		sizeMB   = flag.Int64("size-mb", 1024, "per-file (dfsio/randomwriter) or total (sort/scan) MiB")
		transp   = flag.String("transport", "rdma", "rdma | ipoib | 10gige | 1gige")
		hardware = flag.String("hardware", "hpc-local", "hpc-local | diskless")
		seed     = flag.Int64("seed", 1, "simulation seed")
		flow     = flag.Bool("flow", false, "bulk transfers ride the netsim flow fast path")
		fleet    = flag.Bool("fleet", false, "fleet mode: memory-lean flow-only nodes on a rack-sharded kernel (workloads: dfsio-write, stress)")
		shards   = flag.Int("shards", 1, "fleet mode: DES event-heap shards (racks partitioned round-robin)")
		racksOf  = flag.Int("racks-of", 20, "fleet mode: nodes per rack")
		swarm    = flag.Bool("swarm", false, "fleet mode: drive an open-loop client swarm instead of a -workload")
		clients  = flag.Int("clients", 100000, "swarm: open-loop client population")
		qps      = flag.Float64("qps", 1e7, "swarm: aggregate offered request rate")
		zipf     = flag.Float64("zipf", 1.1, "swarm: key-popularity skew (> 1, or 0 for uniform)")
		reqBytes = flag.Int64("req-bytes", 256, "swarm: request payload bytes")
		swarmMS  = flag.Int64("swarm-ms", 10, "swarm: generation horizon in virtual milliseconds")
		brickGiB = flag.Int("bb-brick-gib", 1, "burst-buffer capacity granule in GiB (orchestrated allocations are whole bricks)")
		bbSched  = flag.String("bb-sched", "fcfs", "buffer orchestrator queue discipline: fcfs | backfill")
		trace    = flag.String("trace", "", "write a per-operation FS trace to this file")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf  = flag.String("memprofile", "", "write an allocation profile to this file on exit")
	)
	flag.Parse()

	stopCPU, err := profiling.StartCPU(*cpuProf)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bbrun:", err)
		os.Exit(1)
	}
	defer stopCPU()
	defer func() {
		if err := profiling.WriteHeap(*memProf); err != nil {
			fmt.Fprintln(os.Stderr, "bbrun:", err)
		}
	}()

	if *swarm {
		if !*fleet {
			fmt.Fprintln(os.Stderr, "bbrun: -swarm requires -fleet")
			os.Exit(2)
		}
		runSwarm(*nodes, *racksOf, *shards, *seed, hbb.Transport(*transp), hbb.SwarmOptions{
			Clients:      *clients,
			TargetQPS:    *qps,
			Zipf:         *zipf,
			RequestBytes: *reqBytes,
			Duration:     time.Duration(*swarmMS) * time.Millisecond,
		})
		return
	}
	if *fleet {
		runFleet(*workload, *nodes, *racksOf, *shards, *files, *sizeMB, *seed, hbb.Transport(*transp))
		return
	}
	b, err := hbb.ParseBackend(*backend)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bbrun:", err)
		flag.Usage()
		os.Exit(2)
	}
	if *files == 0 {
		*files = *nodes * 4
	}
	opts := hbb.Options{
		Nodes:         *nodes,
		Transport:     hbb.Transport(*transp),
		Hardware:      hbb.Hardware(*hardware),
		Seed:          *seed,
		ChunkSize:     4 << 20,
		FlowStreaming: *flow,
		BBBrickGiB:    *brickGiB,
		BBSched:       *bbSched,
	}
	if *trace != "" {
		f, err := os.Create(*trace)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bbrun:", err)
			os.Exit(1)
		}
		defer f.Close()
		opts.Trace = f
	}
	tb, err := hbb.New(opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bbrun:", err)
		os.Exit(1)
	}
	size := *sizeMB << 20

	tb.Run(func(ctx *hbb.Ctx) {
		switch *workload {
		case "dfsio-write":
			res, err := ctx.DFSIOWrite(b, "/bench", *files, size)
			report(err, "files=%d x %dMiB  time=%.2fs  throughput=%.0f MB/s",
				res.Files, size>>20, res.Duration.Seconds(), res.AggregateMBps())
		case "dfsio-read":
			if _, err := ctx.DFSIOWrite(b, "/bench", *files, size); err != nil {
				report(err, "")
				return
			}
			res, err := ctx.DFSIORead(b, "/bench")
			report(err, "files=%d  time=%.2fs  throughput=%.0f MB/s  local-maps=%d/%d",
				res.Files, res.Duration.Seconds(), res.AggregateMBps(), res.DataLocalMaps, res.MapTasks)
		case "randomwriter":
			res, err := ctx.RandomWriter(b, "/bench", *files, size)
			report(err, "maps=%d  time=%.2fs  wrote=%.1f GiB",
				res.MapTasks, res.Duration.Seconds(), float64(res.BytesOutput)/(1<<30))
		case "sort":
			per := size / int64(*files)
			if _, err := ctx.RandomWriter(b, "/in", *files, per); err != nil {
				report(err, "")
				return
			}
			res, err := ctx.Sort(b, "/in", "/out", *nodes*2)
			report(err, "maps=%d reduces=%d  time=%.2fs  shuffled=%.1f GiB  local-maps=%d",
				res.MapTasks, res.ReduceTasks, res.Duration.Seconds(),
				float64(res.BytesShuffled)/(1<<30), res.DataLocalMaps)
		case "scan":
			per := size / int64(*files)
			if _, err := ctx.RandomWriter(b, "/in", *files, per); err != nil {
				report(err, "")
				return
			}
			res, err := ctx.Scan(b, "/in", "/out", 0.02)
			report(err, "maps=%d  time=%.2fs  read=%.1f GiB",
				res.MapTasks, res.Duration.Seconds(), float64(res.BytesInput)/(1<<30))
		default:
			fmt.Fprintf(os.Stderr, "bbrun: unknown workload %q\n", *workload)
			os.Exit(2)
		}
		if st, ok := tb.BurstBufferStats(b); ok {
			fmt.Printf("burst buffer: flushed=%.1f GiB  reads buffer/local/lustre=%d/%d/%d  stalls=%d evictions=%d\n",
				float64(st.BytesFlushed)/(1<<30), st.ReadsBuffer, st.ReadsLocal, st.ReadsLustre,
				st.WriterStalls, st.Evictions)
		}
		if reg, ok := tb.BurstBufferMetrics(b); ok {
			fmt.Printf("flush latency: %s\n", reg.Histogram("flush.latency.s"))
		}
		net := tb.NetworkMetrics()
		fmt.Printf("network:")
		for _, name := range net.Names() {
			if strings.HasPrefix(name, "net.bytes.") {
				fmt.Printf("  %s=%.1fGiB", strings.TrimPrefix(name, "net.bytes."),
					float64(net.Counter(name).Value())/(1<<30))
			}
		}
		fmt.Printf("  flows=%d re-solves=%d aborts=%d  active=%s\n",
			net.Counter("net.flows.started").Value(),
			net.Counter("net.flow.resolves").Value(),
			net.Counter("net.flow.aborts").Value(),
			net.Histogram("net.flows.active"))
	})
}

// runFleet executes a fleet-mode workload: a DFSIO-style replicated
// write sweep or the mixed-traffic stress, on the sharded kernel.
func runFleet(workload string, nodes, racksOf, shards, files int, sizeMB, seed int64, transport hbb.Transport) {
	fb, err := hbb.NewFleet(hbb.Options{
		Nodes:     nodes,
		RacksOf:   racksOf,
		Transport: transport,
		Seed:      seed,
		SimShards: shards,
		FleetMode: true,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "bbrun:", err)
		os.Exit(1)
	}
	if files == 0 {
		files = 4
	}
	var res hbb.FleetResult
	switch workload {
	case "dfsio-write":
		res = fb.DFSIOWrite(files, sizeMB<<20)
	case "stress":
		res = fb.Stress(files)
	default:
		fmt.Fprintf(os.Stderr, "bbrun: fleet mode supports dfsio-write | stress, not %q\n", workload)
		os.Exit(2)
	}
	fmt.Printf("fleet: nodes=%d racks=%d shards=%d ops=%d moved=%.1fGiB\n",
		res.Nodes, res.Racks, res.Shards, res.Ops, float64(res.Bytes)/(1<<30))
	fmt.Printf("virtual=%.3fs wall=%.3fs events=%d (%.1f/op) windows=%d cross-shard-msgs=%d\n",
		res.Elapsed.Seconds(), res.Wall.Seconds(), res.Events, res.EventsPerOp,
		res.Windows, res.Messages)
	fmt.Printf("heap=%.3f MB/node fingerprint=%016x\n", res.HeapMBPerNode, res.Fingerprint)
}

// runSwarm drives the open-loop client swarm on a fleet testbed and
// prints the scaling figures plus the swarm metric namespace.
func runSwarm(nodes, racksOf, shards int, seed int64, transport hbb.Transport, so hbb.SwarmOptions) {
	fb, err := hbb.NewFleet(hbb.Options{
		Nodes:     nodes,
		RacksOf:   racksOf,
		Transport: transport,
		Seed:      seed,
		SimShards: shards,
		FleetMode: true,
		Swarm:     so,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "bbrun:", err)
		os.Exit(1)
	}
	res, err := fb.RunSwarm()
	if err != nil {
		fmt.Fprintln(os.Stderr, "bbrun:", err)
		os.Exit(1)
	}
	fmt.Printf("swarm: clients=%d nodes=%d racks=%d shards=%d requests=%d completed=%d\n",
		res.Clients, res.Nodes, res.Racks, res.Shards, res.Requests, res.Completed)
	fmt.Printf("virtual=%.3fs wall=%.3fs achieved=%.0f qps events=%d (%.2f/req) windows=%d cross-shard-msgs=%d\n",
		res.Elapsed.Seconds(), res.Wall.Seconds(), res.AchievedQPS,
		res.Events, res.EventsPerRequest, res.Windows, res.Messages)
	fmt.Printf("heap=%.1f B/client max-inflight=%d moved=%.2fGiB fingerprint=%016x\n",
		res.HeapBPerClient, res.MaxInflight, float64(res.Bytes)/(1<<30), res.Fingerprint)
	for _, line := range strings.Split(strings.TrimSuffix(fb.Metrics().String(), "\n"), "\n") {
		if strings.HasPrefix(line, "swarm.") {
			fmt.Printf("  %s\n", line)
		}
	}
}

func report(err error, format string, args ...any) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "bbrun: workload failed:", err)
		os.Exit(1)
	}
	fmt.Printf(format+"\n", args...)
}
