package hbb

// One testing.B benchmark per figure and table of the paper's evaluation.
// Each benchmark regenerates its experiment at small scale (fast enough
// for `go test -bench`) and logs the resulting table; `cmd/bbench
// -scale full` produces the paper-scale numbers recorded in
// EXPERIMENTS.md. The benchmark "time" is wall-clock simulation cost, not
// the virtual-time result — the tables carry the reproduced metrics.

import (
	"fmt"
	"runtime"
	"testing"
	"time"

	"hbb/internal/mapreduce"
	"hbb/internal/orchestrator"
)

func benchExperiment(b *testing.B, id string) {
	e, ok := ExperimentByID(id)
	if !ok {
		b.Fatalf("unknown experiment %q", id)
	}
	var table string
	for i := 0; i < b.N; i++ {
		table = e.Run(ScaleSmall).String()
	}
	b.Logf("claim: %s\n%s", e.Claim, table)
}

// BenchmarkFig1MemcachedLatency regenerates the KV op-latency
// microbenchmark across transports.
func BenchmarkFig1MemcachedLatency(b *testing.B) { benchExperiment(b, "fig1") }

// BenchmarkFig2MemcachedThroughput regenerates the KV throughput scaling
// curve.
func BenchmarkFig2MemcachedThroughput(b *testing.B) { benchExperiment(b, "fig2") }

// BenchmarkFig3DFSIOWrite regenerates the TestDFSIO write sweep
// (claim: up to 2.6x over HDFS, 1.5x over Lustre).
func BenchmarkFig3DFSIOWrite(b *testing.B) { benchExperiment(b, "fig3") }

// BenchmarkFig4DFSIORead regenerates the TestDFSIO read sweep
// (claim: up to 8x read gain).
func BenchmarkFig4DFSIORead(b *testing.B) { benchExperiment(b, "fig4") }

// BenchmarkFig5Sort regenerates the Sort execution-time sweep
// (claim: -28% vs Lustre, -19% vs HDFS).
func BenchmarkFig5Sort(b *testing.B) { benchExperiment(b, "fig5") }

// BenchmarkFig6RandomWriter regenerates the RandomWriter sweep.
func BenchmarkFig6RandomWriter(b *testing.B) { benchExperiment(b, "fig6") }

// BenchmarkFig7Scalability regenerates the cluster-size scaling sweep.
func BenchmarkFig7Scalability(b *testing.B) { benchExperiment(b, "fig7") }

// BenchmarkFig8IOIntensive regenerates the concurrent I/O-intensive mix.
func BenchmarkFig8IOIntensive(b *testing.B) { benchExperiment(b, "fig8") }

// BenchmarkFig9FaultTolerance regenerates the buffer-server-crash run.
func BenchmarkFig9FaultTolerance(b *testing.B) { benchExperiment(b, "fig9") }

// BenchmarkTab1LocalStorage regenerates the local-storage-requirement
// table.
func BenchmarkTab1LocalStorage(b *testing.B) { benchExperiment(b, "tab1") }

// BenchmarkTab2Ablation regenerates the flusher/memory ablation.
func BenchmarkTab2Ablation(b *testing.B) { benchExperiment(b, "tab2") }

// BenchmarkTab3Stripes regenerates the Lustre stripe/transport ablation.
func BenchmarkTab3Stripes(b *testing.B) { benchExperiment(b, "tab3") }

// BenchmarkDFSIOWriteHeadline reports the headline write gains as
// benchmark metrics so regressions are visible in benchstat diffs.
func BenchmarkDFSIOWriteHeadline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		mbps := map[Backend]float64{}
		for _, bk := range []Backend{BackendHDFS, BackendLustre, BackendBBAsync} {
			bk := bk
			tb, err := New(Options{Nodes: 8, Seed: 1, ChunkSize: 4 << 20})
			if err != nil {
				b.Fatal(err)
			}
			tb.Run(func(ctx *Ctx) {
				res, err := ctx.DFSIOWrite(bk, "/bench", 32, 512<<20)
				if err != nil {
					b.Fatal(err)
				}
				mbps[bk] = res.AggregateMBps()
			})
		}
		if i == 0 {
			b.ReportMetric(mbps[BackendBBAsync]/mbps[BackendHDFS], "gain-vs-hdfs")
			b.ReportMetric(mbps[BackendBBAsync]/mbps[BackendLustre], "gain-vs-lustre")
			b.ReportMetric(mbps[BackendBBAsync], "bb-MB/s")
		}
	}
}

// BenchmarkSimKernel measures raw event throughput of the DES kernel — the
// cost floor under every experiment.
func BenchmarkSimKernel(b *testing.B) {
	tb, err := New(Options{Nodes: 4, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	_ = tb
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tb, _ := New(Options{Nodes: 4, Seed: int64(i + 1)})
		tb.Run(func(ctx *Ctx) {
			ctx.Sleep(time.Second)
		})
	}
}

// BenchmarkFig10Diskless regenerates the diskless-deployability run.
func BenchmarkFig10Diskless(b *testing.B) { benchExperiment(b, "fig10") }

// BenchmarkTab4Extensions regenerates the replication/re-admission
// extension table.
func BenchmarkTab4Extensions(b *testing.B) { benchExperiment(b, "tab4") }

// BenchmarkTab5PolicyMetrics regenerates the per-scheme burst-buffer
// metrics table (flush latency, writer stalls, read sources, adaptive
// mode split).
func BenchmarkTab5PolicyMetrics(b *testing.B) { benchExperiment(b, "tab5") }

// BenchmarkTab6DataPlane regenerates the stage-out data-plane comparison
// (coalesced flush runs and block readahead vs the seed per-block drain).
func BenchmarkTab6DataPlane(b *testing.B) { benchExperiment(b, "tab6") }

// drainBurstOnce runs the tab6 checkpoint-burst shape once and returns the
// simulated drain time: 8 files x 8 blocks through two throttled buffer
// servers onto a narrow Lustre, then a timed full drain.
func drainBurstOnce(b *testing.B, coalesced bool) time.Duration {
	opts := Options{Nodes: 4, Seed: 1, ChunkSize: 4 << 20,
		BlockSize: 16 << 20, BBServers: 2, BBFlushers: 1,
		LustreOSTs: 2, LustreStripeCount: 2}
	if coalesced {
		opts.BBFlushBatchBlocks = 8
	}
	tb, err := New(opts)
	if err != nil {
		b.Fatal(err)
	}
	var drain time.Duration
	tb.Run(func(ctx *Ctx) {
		if _, err := ctx.DFSIOWrite(BackendBBAsync, "/bench/drain", 8, 128<<20); err != nil {
			b.Fatal(err)
		}
		start := ctx.Now()
		ctx.DrainBurstBuffer(BackendBBAsync)
		drain = ctx.Now() - start
	})
	return drain
}

// BenchmarkStageOutDrain reports the simulated drain time of the seed
// per-block stage-out and the coalescing scheduler side by side, so both
// the virtual-time win and the simulator's own alloc cost show up in
// benchstat diffs.
func BenchmarkStageOutDrain(b *testing.B) {
	b.ReportAllocs()
	var perBlock, coalesced time.Duration
	for i := 0; i < b.N; i++ {
		perBlock = drainBurstOnce(b, false)
		coalesced = drainBurstOnce(b, true)
	}
	b.ReportMetric(perBlock.Seconds()*1e3, "per-block-drain-ms")
	b.ReportMetric(coalesced.Seconds()*1e3, "coalesced-drain-ms")
	b.ReportMetric(perBlock.Seconds()/coalesced.Seconds(), "drain-speedup")
}

// BenchmarkReadAheadStreaming reports streaming read throughput with and
// without block readahead over the same buffered file set.
func BenchmarkReadAheadStreaming(b *testing.B) {
	b.ReportAllocs()
	run := func(readAhead int) float64 {
		tb, err := New(Options{Nodes: 4, Seed: 1, ChunkSize: 4 << 20,
			BlockSize: 16 << 20, BBReadAhead: readAhead})
		if err != nil {
			b.Fatal(err)
		}
		var mbps float64
		tb.Run(func(ctx *Ctx) {
			if _, err := ctx.DFSIOWrite(BackendBBAsync, "/bench/ra", 8, 64<<20); err != nil {
				b.Fatal(err)
			}
			ctx.DrainBurstBuffer(BackendBBAsync)
			r, err := ctx.DFSIORead(BackendBBAsync, "/bench/ra")
			if err != nil {
				b.Fatal(err)
			}
			mbps = r.AggregateMBps()
		})
		return mbps
	}
	var base, ahead float64
	for i := 0; i < b.N; i++ {
		base = run(0)
		ahead = run(2)
	}
	b.ReportMetric(base, "rd-MB/s")
	b.ReportMetric(ahead, "rd-MB/s-readahead")
	b.ReportMetric(ahead/base, "read-speedup")
}

// BenchmarkTab7Orchestration regenerates the multi-job buffer
// orchestration comparison (FCFS vs backfill over a shared brick pool).
func BenchmarkTab7Orchestration(b *testing.B) { benchExperiment(b, "tab7") }

// contentionOnce runs the tab7 four-job contention cell once under the
// given queue discipline and returns the simulated makespan: heterogeneous
// asks [5,4,2,2] against an 8-brick pool, each tenant staging in, running
// a map-only job on its instance, and releasing.
func contentionOnce(b *testing.B, sched string) time.Duration {
	tb, err := New(Options{Nodes: 4, Seed: 1, ChunkSize: 4 << 20,
		BlockSize: 16 << 20, BBServers: 2, BBServerMemory: 4 << 30,
		BBFlushers: 1, BBSched: sched,
		LustreOSTs: 2, LustreStripeCount: 2})
	if err != nil {
		b.Fatal(err)
	}
	bricks := []int{5, 4, 2, 2}
	allocs := make([]*orchestrator.Allocation, len(bricks))
	tb.Run(func(ctx *Ctx) {
		orch, err := ctx.BufferOrchestrator(BackendBBAsync)
		if err != nil {
			b.Error(err)
			return
		}
		for j := range bricks {
			if err := ctx.WriteFile(BackendLustre, j,
				fmt.Sprintf("/in/f%d", j), 32<<20); err != nil {
				b.Error(err)
				return
			}
		}
		joins := make([]*Join, len(bricks))
		for j := range bricks {
			a := orch.Submit(orchestrator.Request{
				Name:    fmt.Sprintf("job%d", j),
				Bricks:  bricks[j],
				Client:  tb.cluster.Nodes[j].ID,
				StageIn: []orchestrator.StagePair{{Src: fmt.Sprintf("/in/f%d", j), Dst: "/data/in"}},
			})
			allocs[j] = a
			j := j
			joins[j] = ctx.Go(fmt.Sprintf("tenant%d", j), func(c2 *Ctx) {
				if err := a.Await(c2.p); err != nil {
					b.Error(err)
					return
				}
				sub := c2.SubmitJob(mapreduce.Job{
					Name:           fmt.Sprintf("job%d", j),
					Input:          []string{"/data/in"},
					InputFS:        a.FS(),
					OutputFS:       a.FS(),
					OutputDir:      "/data/out",
					MapOutputRatio: 1.0,
				})
				if _, err := sub.Wait(c2.p); err != nil {
					b.Error(err)
					return
				}
				orch.Release(a)
			})
		}
		for _, jn := range joins {
			jn.Wait(ctx)
		}
		for _, a := range allocs {
			a.AwaitFreed(ctx.p)
		}
	})
	var makespan time.Duration
	for _, a := range allocs {
		if span := a.Times.Freed - a.Times.Submitted; span > makespan {
			makespan = span
		}
	}
	return makespan
}

// BenchmarkMultiJobContention reports the simulated four-job makespan
// under FCFS and backfill side by side, so the queue-discipline trade-off
// and the orchestration layer's own alloc cost show up in benchstat diffs.
func BenchmarkMultiJobContention(b *testing.B) {
	b.ReportAllocs()
	var fcfs, backfill time.Duration
	for i := 0; i < b.N; i++ {
		fcfs = contentionOnce(b, "fcfs")
		backfill = contentionOnce(b, "backfill")
	}
	b.ReportMetric(fcfs.Seconds()*1e3, "fcfs-makespan-ms")
	b.ReportMetric(backfill.Seconds()*1e3, "backfill-makespan-ms")
	b.ReportMetric(fcfs.Seconds()/backfill.Seconds(), "backfill-speedup")
}

// benchExperimentSet regenerates a bundle of cheap experiments end to end
// at a given worker count; comparing the Serial and Parallel variants shows
// the wall-clock win of the parallel experiment runner (bbench -parallel).
func benchExperimentSet(b *testing.B, workers int) {
	defer SetParallelism(1)
	SetParallelism(workers)
	for i := 0; i < b.N; i++ {
		for _, id := range []string{"fig1", "fig2", "fig9"} {
			e, _ := ExperimentByID(id)
			_ = e.Run(ScaleSmall)
		}
	}
}

// BenchmarkExperimentsSerial runs the bundle one cell at a time.
func BenchmarkExperimentsSerial(b *testing.B) { benchExperimentSet(b, 1) }

// BenchmarkExperimentsParallel runs the same bundle with 4 workers; cells
// are independent seeded simulations, so only wall time changes.
func BenchmarkExperimentsParallel(b *testing.B) { benchExperimentSet(b, 4) }

// BenchmarkTab8FleetScaling regenerates the fleet-mode scaling table at
// small scale (the full 10k-node sweep runs via `make bench-fleet`).
func BenchmarkTab8FleetScaling(b *testing.B) { benchExperiment(b, "tab8") }

// fleetDFSIOOnce runs one fleet DFSIO-write cell and reports the
// simulator-scaling metrics alongside the timing.
func fleetDFSIOOnce(b *testing.B, nodes, shards, filesPerNode int, fileSize int64) FleetResult {
	fb, err := NewFleet(Options{Nodes: nodes, RacksOf: 20, Seed: 1, SimShards: shards})
	if err != nil {
		b.Fatal(err)
	}
	return fb.DFSIOWrite(filesPerNode, fileSize)
}

// BenchmarkFleetDFSIO10k is the 10,000-node smoke: a million replicated
// file writes over 500 racks on a 4-way-sharded kernel. Run with
// -benchtime 1x (`make bench-fleet`); each iteration is one full sweep.
func BenchmarkFleetDFSIO10k(b *testing.B) {
	var r FleetResult
	for i := 0; i < b.N; i++ {
		r = fleetDFSIOOnce(b, 10000, 4, 100, 8<<20)
	}
	b.ReportMetric(r.EventsPerOp, "events/op")
	b.ReportMetric(r.HeapMBPerNode, "MB-heap/node")
	b.ReportMetric(r.Wall.Seconds(), "wall-s")
	b.ReportMetric(float64(r.Ops), "files")
}

// BenchmarkTab9SwarmScaling regenerates the open-loop swarm scaling
// table at small scale (the full million-client sweep runs via
// `make bench-swarm`).
func BenchmarkTab9SwarmScaling(b *testing.B) { benchExperiment(b, "tab9") }

// swarmOnce runs one open-loop swarm cell and reports the scaling
// metrics alongside the timing. Requests are KV-sized (256 B) to keep
// the zipf-hot node inside its NIC capacity — see tab9.
func swarmOnce(b *testing.B, clients, shards int) SwarmResult {
	fb, err := NewFleet(Options{Nodes: 240, RacksOf: 20, FleetMode: true,
		Seed: 1, SimShards: shards,
		Swarm: SwarmOptions{
			Clients:      clients,
			TargetQPS:    100 * float64(clients),
			Zipf:         1.1,
			RequestBytes: 256,
			Duration:     10 * time.Millisecond,
		}})
	if err != nil {
		b.Fatal(err)
	}
	r, err := fb.RunSwarm()
	if err != nil {
		b.Fatal(err)
	}
	return r
}

// BenchmarkSwarmMillion is the million-client smoke: 10^6 open-loop
// clients at 100 QPS each on a 4-way-sharded 240-node fleet. Run with
// -benchtime 1x (`make bench-swarm`); each iteration is one full run.
// The headline figure is retained heap bytes per client.
func BenchmarkSwarmMillion(b *testing.B) {
	var r SwarmResult
	for i := 0; i < b.N; i++ {
		r = swarmOnce(b, 1000000, 4)
	}
	b.ReportMetric(r.HeapBPerClient, "B-heap/client")
	b.ReportMetric(r.EventsPerRequest, "events/req")
	b.ReportMetric(float64(r.Requests)/r.Wall.Seconds(), "req/wall-s")
	b.ReportMetric(float64(r.Requests), "requests")
}

// swarmOverloadOnce drives one oversubscribed open-loop swarm run:
// ~100k requests whose byte stream is ~20x what the zipf-hot NICs
// can drain (the 10 GB offered in the 10 ms horizon takes ~23x that
// long to clear), so a deep backlog of transfers piles onto the
// fabric while the run drains to empty. With full=true the rate
// solvers fall back to the engine this PR replaced: no same-pair
// bundling (every outstanding leg its own entity) and a full
// re-solve of every entity on every rate event.
func swarmOverloadOnce(b *testing.B, full bool) (SwarmResult, *FleetBed) {
	fb, err := NewFleet(Options{Nodes: 240, RacksOf: 20, FleetMode: true,
		Seed: 1, SimShards: 4,
		Swarm: SwarmOptions{
			Clients:      20000,
			TargetQPS:    1e7,
			Zipf:         1.1,
			RequestBytes: 96 << 10,
			Duration:     10 * time.Millisecond,
		}})
	if err != nil {
		b.Fatal(err)
	}
	fb.SetReferenceSolver(full)
	fb.SetBundling(!full)
	r, err := fb.RunSwarm()
	if err != nil {
		b.Fatal(err)
	}
	return r, fb
}

// BenchmarkSwarmOverload compares the incremental bundled solver
// against the old full-resolve per-leg engine on the same
// 20x-oversubscribed swarm. The offered load and request count are
// identical; req/wall-s is the headline. links/op is solver links
// touched per rate event — bounded by the affected component for the
// incremental engine, O(outstanding legs) for the full baseline.
func BenchmarkSwarmOverload(b *testing.B) {
	for _, tc := range []struct {
		name string
		ref  bool
	}{{"incremental", false}, {"full-resolve", true}} {
		tc := tc
		b.Run(tc.name, func(b *testing.B) {
			runtime.GC()
			b.ResetTimer()
			var r SwarmResult
			var fb *FleetBed
			for i := 0; i < b.N; i++ {
				r, fb = swarmOverloadOnce(b, tc.ref)
			}
			b.StopTimer()
			m := fb.Metrics()
			resolves := m.Counter("fleet.resolves").Value()
			if resolves > 0 {
				b.ReportMetric(float64(m.Counter("fleet.links.touched").Value())/float64(resolves), "links/op")
			}
			b.ReportMetric(float64(r.Requests)/r.Wall.Seconds(), "req/wall-s")
			b.ReportMetric(float64(r.Requests), "requests")
		})
	}
}

// BenchmarkSwarmShardSpeedup runs the same 100k-client swarm on one
// heap and on a 4-way-sharded kernel so benchstat shows the multi-core
// win (identical fingerprints; only wall-clock differs — on a 1-core
// host the sharded run must stay within ~2%).
func BenchmarkSwarmShardSpeedup(b *testing.B) {
	for _, shards := range []int{1, 4} {
		shards := shards
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			runtime.GC()
			b.ResetTimer()
			var r SwarmResult
			for i := 0; i < b.N; i++ {
				r = swarmOnce(b, 100000, shards)
			}
			b.ReportMetric(r.EventsPerRequest, "events/req")
			b.ReportMetric(float64(r.Requests)/r.Wall.Seconds(), "req/wall-s")
		})
	}
}

// BenchmarkFleetShardSpeedup runs the same 1000-node sweep on one heap
// and on a 4-way-sharded kernel so benchstat shows the multi-core win
// (the traces are identical; only wall-clock differs).
func BenchmarkFleetShardSpeedup(b *testing.B) {
	for _, shards := range []int{1, 4} {
		shards := shards
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			// Earlier benchmarks in the suite leave heap garbage whose GC
			// lands inside this sub-second measurement; start clean so the
			// shards=1 vs 4 comparison isn't skewed by suite order.
			runtime.GC()
			b.ResetTimer()
			var r FleetResult
			for i := 0; i < b.N; i++ {
				r = fleetDFSIOOnce(b, 1000, shards, 20, 8<<20)
			}
			b.ReportMetric(r.EventsPerOp, "events/op")
			b.ReportMetric(r.HeapMBPerNode, "MB-heap/node")
		})
	}
}
