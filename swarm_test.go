package hbb

import (
	"strings"
	"testing"
	"time"
)

func swarmOpts(shards int) Options {
	return Options{
		Nodes:     240,
		RacksOf:   20,
		FleetMode: true,
		SimShards: shards,
		Seed:      3,
		Swarm: SwarmOptions{
			Clients:   20000,
			TargetQPS: 1.5e6,
			Zipf:      1.1,
			Duration:  10 * time.Millisecond,
		},
	}
}

// TestSwarmCrossShardStress is the swarm's determinism obligation: the
// open-loop population must produce the identical trace fingerprint,
// request count, and virtual elapsed time at every shard and worker
// count, with adaptive lookahead on (the default) and off. The name
// rides `make stress`, so this also runs under -race.
func TestSwarmCrossShardStress(t *testing.T) {
	run := func(shards, workers int, adaptive bool) SwarmResult {
		fb, err := NewFleet(swarmOpts(shards))
		if err != nil {
			t.Fatal(err)
		}
		fb.SetWorkers(workers)
		fb.SetAdaptiveSync(adaptive)
		res, err := fb.RunSwarm()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	base := run(1, 1, true)
	if base.Requests == 0 || base.Completed != base.Requests {
		t.Fatalf("degenerate baseline: %+v", base)
	}
	for _, tc := range []struct {
		shards, workers int
		adaptive        bool
	}{
		{1, 1, false}, {4, 1, true}, {4, 8, true}, {4, 8, false}, {6, 8, true},
	} {
		got := run(tc.shards, tc.workers, tc.adaptive)
		if got.Fingerprint != base.Fingerprint || got.Requests != base.Requests ||
			got.Elapsed != base.Elapsed || got.Completed != base.Completed {
			t.Errorf("shards=%d workers=%d adaptive=%v: (fp %x, req %d, elapsed %v), want (fp %x, req %d, elapsed %v)",
				tc.shards, tc.workers, tc.adaptive,
				got.Fingerprint, got.Requests, got.Elapsed,
				base.Fingerprint, base.Requests, base.Elapsed)
		}
	}
}

func TestSwarmAchievesTargetQPS(t *testing.T) {
	fb, err := NewFleet(swarmOpts(1))
	if err != nil {
		t.Fatal(err)
	}
	res, err := fb.RunSwarm()
	if err != nil {
		t.Fatal(err)
	}
	ratio := res.AchievedQPS / 1.5e6
	if ratio < 0.9 || ratio > 1.1 {
		t.Errorf("achieved %.0f QPS for target 1.5M (ratio %.3f)", res.AchievedQPS, ratio)
	}
	// Batched injection is the point: far fewer kernel events than
	// requests, where per-client processes would cost tens of events each.
	if res.EventsPerRequest >= 2 {
		t.Errorf("events/request %.2f, want < 2 (batching defeated)", res.EventsPerRequest)
	}
	if m := fb.Metrics(); m.Counter("swarm.arrivals").Value() != res.Requests {
		t.Errorf("registry swarm.arrivals %d, want %d", m.Counter("swarm.arrivals").Value(), res.Requests)
	}
}

// TestSwarmOptionsValidation pins clear, early errors for every bad
// swarm/shard knob combination instead of silent misbehavior.
func TestSwarmOptionsValidation(t *testing.T) {
	for _, tc := range []struct {
		name string
		opts Options
		want string
	}{
		{
			name: "shards exceed racks",
			opts: func() Options { o := swarmOpts(13); return o }(), // 12 racks
			want: "shards exceed",
		},
		{
			name: "zero target qps",
			opts: func() Options { o := swarmOpts(1); o.Swarm.TargetQPS = 0; return o }(),
			want: "TargetQPS",
		},
		{
			name: "negative target qps",
			opts: func() Options { o := swarmOpts(1); o.Swarm.TargetQPS = -4; return o }(),
			want: "TargetQPS",
		},
		{
			name: "zipf skew too small",
			opts: func() Options { o := swarmOpts(1); o.Swarm.Zipf = 0.9; return o }(),
			want: "Zipf",
		},
		{
			name: "negative clients",
			opts: func() Options { o := swarmOpts(1); o.Swarm.Clients = -1; return o }(),
			want: "Clients",
		},
		{
			name: "negative max inflight",
			opts: func() Options { o := swarmOpts(1); o.Swarm.MaxInflight = -1; return o }(),
			want: "MaxInflight",
		},
	} {
		_, err := NewFleet(tc.opts)
		if err == nil {
			t.Errorf("%s: NewFleet accepted bad options", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
	// Swarm options on the regular (non-fleet) testbed are a hard error.
	if _, err := New(Options{Nodes: 8, Swarm: SwarmOptions{Clients: 100, TargetQPS: 1000}}); err == nil ||
		!strings.Contains(err.Error(), "FleetMode") {
		t.Errorf("New with swarm options: err %v, want FleetMode requirement", err)
	}
	// RunSwarm without swarm options configured is a hard error too.
	fb, err := NewFleet(Options{Nodes: 40, RacksOf: 10, FleetMode: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fb.RunSwarm(); err == nil {
		t.Error("RunSwarm without Options.Swarm accepted")
	}
}
