package hbb_test

import (
	"fmt"

	"hbb"
)

// The simulation is deterministic, so examples assert exact output.

// Build a testbed, write a file through the async burst buffer, and read
// it back from another node.
func Example() {
	tb, err := hbb.New(hbb.Options{Nodes: 8, Seed: 42})
	if err != nil {
		panic(err)
	}
	tb.Run(func(ctx *hbb.Ctx) {
		if err := ctx.WriteFile(hbb.BackendBBAsync, 0, "/demo/data", 256<<20); err != nil {
			panic(err)
		}
		n, err := ctx.ReadFile(hbb.BackendBBAsync, 5, "/demo/data")
		if err != nil {
			panic(err)
		}
		fmt.Printf("read %d MiB\n", n>>20)
	})
	// Output: read 256 MiB
}

// Compare the paper's headline TestDFSIO write ordering across the two
// baselines and the async burst buffer.
func ExampleCtx_DFSIOWrite() {
	results := map[hbb.Backend]float64{}
	for _, b := range []hbb.Backend{hbb.BackendHDFS, hbb.BackendLustre, hbb.BackendBBAsync} {
		b := b
		tb, _ := hbb.New(hbb.Options{Nodes: 8, Seed: 1, ChunkSize: 4 << 20})
		tb.Run(func(ctx *hbb.Ctx) {
			res, err := ctx.DFSIOWrite(b, "/bench", 32, 512<<20)
			if err != nil {
				panic(err)
			}
			results[b] = res.AggregateMBps()
		})
	}
	fmt.Println("buffer beats Lustre:", results[hbb.BackendBBAsync] > results[hbb.BackendLustre])
	fmt.Println("Lustre beats HDFS:  ", results[hbb.BackendLustre] > results[hbb.BackendHDFS])
	// Output:
	// buffer beats Lustre: true
	// Lustre beats HDFS:   true
}

// Crash a buffer server and observe the scheme-dependent outcome.
func ExampleCtx_FailBufferServer() {
	tb, _ := hbb.New(hbb.Options{Nodes: 4, Seed: 9, BBFlushers: 1})
	tb.Run(func(ctx *hbb.Ctx) {
		// Write through the write-through (sync) scheme, then crash every
		// buffer server: nothing is lost.
		if _, err := ctx.DFSIOWrite(hbb.BackendBBSync, "/d", 8, 128<<20); err != nil {
			panic(err)
		}
		for i := 0; i < 4; i++ {
			ctx.FailBufferServer(hbb.BackendBBSync, i)
		}
		n, err := ctx.ReadFile(hbb.BackendBBSync, 1, "/d/part-m-00000")
		fmt.Printf("after total buffer loss: read %d MiB, err=%v\n", n>>20, err)
	})
	st, _ := tb.BurstBufferStats(hbb.BackendBBSync)
	fmt.Println("blocks lost:", st.BlocksLost)
	// Output:
	// after total buffer loss: read 128 MiB, err=<nil>
	// blocks lost: 0
}
