package hbb

// Fleet mode: the datacenter-scale counterpart of Testbed. Where Testbed
// instantiates every backend of the study over a packet-accurate fabric,
// a FleetBed builds only what a 10,000-node scaling sweep needs —
// memory-lean flow-only nodes on a rack-sharded DES kernel — and runs
// synthetic I/O workloads whose traffic shapes mirror the study's
// (DFSIO-style replicated writes, mixed pipeline/buffer/stripe/shuffle
// stress). Results carry the scaling figures the single-heap testbed
// cannot produce: wall-clock at 10k nodes, events per operation, and
// MB-of-heap per node.

import (
	"fmt"
	"time"

	"hbb/internal/cluster"
	"hbb/internal/metrics"
	"hbb/internal/sim"
	"hbb/internal/swarm"
)

const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

// FleetBed is a fleet-mode testbed. It is single-shot: build, load one
// workload, read the result.
type FleetBed struct {
	opts    Options
	fc      *cluster.FleetCluster
	base    metrics.HeapSnapshot
	metrics *metrics.Registry
	ran     bool
}

// NewFleet builds a fleet testbed from the same Options vocabulary as
// New: Nodes and RacksOf shape the topology (Nodes must divide evenly
// into racks), Transport picks the NIC profile, SimShards partitions the
// racks across DES event heaps. Backend knobs (block size, buffer
// sizing) are ignored — fleet workloads model traffic, not file systems.
func NewFleet(opts Options) (*FleetBed, error) {
	opts = opts.withDefaults()
	if opts.SimShards == 0 {
		opts.SimShards = 1
	}
	prof, err := opts.Transport.profile()
	if err != nil {
		return nil, err
	}
	racksOf := opts.RacksOf
	if racksOf > opts.Nodes {
		racksOf = opts.Nodes
	}
	if opts.Nodes <= 0 || racksOf <= 0 || opts.Nodes%racksOf != 0 {
		return nil, fmt.Errorf("hbb: fleet mode needs Nodes (%d) to fill whole racks of %d", opts.Nodes, racksOf)
	}
	if opts.Swarm.Enabled() {
		// Fail fast on bad swarm knobs rather than at RunSwarm time.
		if err := opts.Swarm.config(opts.Seed).Validate(); err != nil {
			return nil, err
		}
	}
	base := metrics.SnapHeap()
	fc, err := cluster.NewFleet(cluster.FleetConfig{
		Racks:        opts.Nodes / racksOf,
		NodesPerRack: racksOf,
		Transport:    prof,
		Shards:       opts.SimShards,
		Seed:         opts.Seed,
	})
	if err != nil {
		return nil, err
	}
	return &FleetBed{opts: opts, fc: fc, base: base}, nil
}

// Cluster returns the underlying fleet cluster.
func (fb *FleetBed) Cluster() *cluster.FleetCluster { return fb.fc }

// SetWorkers bounds how many shards execute concurrently inside each
// synchronization window. Any value produces the identical event trace.
func (fb *FleetBed) SetWorkers(n int) { fb.fc.Fleet.Group().SetWorkers(n) }

// SetAdaptiveSync toggles the kernel's adaptive lookahead (on by
// default). Both settings produce the identical event trace; off forces
// the classic fixed-horizon windows, for A/B measurements.
func (fb *FleetBed) SetAdaptiveSync(on bool) { fb.fc.Fleet.Group().SetAdaptive(on) }

// SwarmOptions configures the open-loop client swarm a fleet run can
// carry (Options.Swarm). Clients > 0 enables it; the remaining fields
// mirror swarm.Config and zero values take its defaults.
type SwarmOptions struct {
	// Clients is the swarm population (0 leaves the swarm off).
	Clients int
	// TargetQPS is the aggregate offered request rate; mandatory when
	// the swarm is enabled.
	TargetQPS float64
	// Zipf is the key-popularity skew exponent (> 1), or 0 for uniform.
	Zipf float64
	// Keys, RequestBytes, Duration, FixedRate pass through to
	// swarm.Config.
	Keys         int
	RequestBytes int64
	Duration     time.Duration
	FixedRate    bool
	// MaxInflight, when positive, sheds arrivals while a rack's
	// outstanding-request count is at the bound (swarm.Config.MaxInflight),
	// keeping open-loop overload runs bounded.
	MaxInflight int64
}

// Enabled reports whether any swarm option is set.
func (s SwarmOptions) Enabled() bool { return s != SwarmOptions{} }

// config lowers the options onto swarm.Config.
func (s SwarmOptions) config(seed int64) swarm.Config {
	return swarm.Config{
		Clients:      s.Clients,
		TargetQPS:    s.TargetQPS,
		Zipf:         s.Zipf,
		Keys:         s.Keys,
		RequestBytes: s.RequestBytes,
		Duration:     s.Duration,
		FixedRate:    s.FixedRate,
		MaxInflight:  s.MaxInflight,
		Seed:         seed,
	}
}

// SwarmResult extends a fleet measurement with the swarm's figures.
type SwarmResult struct {
	FleetResult
	// Clients is the swarm population; Requests the open-loop arrivals
	// it generated; Completed the requests whose payload fully landed;
	// Shed the requests dropped at the MaxInflight admission cap.
	Clients   int
	Requests  int64
	Completed int64
	Shed      int64
	// AchievedQPS is Requests over the generation horizon.
	AchievedQPS float64
	// EventsPerRequest is kernel events per generated request — the
	// batching payoff (per-client events would put it in the tens).
	EventsPerRequest float64
	// HeapBPerClient is the retained-heap footprint per client in bytes.
	HeapBPerClient float64
	// MaxInflight is the peak outstanding-request count on any rack.
	MaxInflight int64
}

// FleetResult is one fleet workload's measurement.
type FleetResult struct {
	Nodes  int
	Racks  int
	Shards int
	// Ops is the workload's operation count (files written, stress ops).
	Ops int
	// Bytes is the payload volume moved, replicas included.
	Bytes int64
	// Elapsed is the workload's virtual duration; Wall is the host time
	// the run took.
	Elapsed time.Duration
	Wall    time.Duration
	// Events, Windows, Messages are kernel totals: events dispatched,
	// synchronization windows run, cross-shard messages delivered.
	Events   int64
	Windows  int64
	Messages int64
	// EventsPerOp is Events/Ops, the simulator-efficiency figure.
	EventsPerOp float64
	// HeapMBPerNode is the retained-heap footprint per node.
	HeapMBPerNode float64
	// Fingerprint folds every operation completion (virtual time, node,
	// op index) per rack, combined in rack order — identical across shard
	// and worker counts.
	Fingerprint uint64
}

// fleetHash accumulates per-rack trace hashes; each slot is touched only
// by its rack's owning shard, so no locking is needed.
type fleetHash struct {
	hashes []uint64
	bytes  []int64
}

func newFleetHash(racks int) *fleetHash {
	fh := &fleetHash{hashes: make([]uint64, racks), bytes: make([]int64, racks)}
	for i := range fh.hashes {
		fh.hashes[i] = fnvOffset
	}
	return fh
}

func (fh *fleetHash) fold(rack int, vs ...uint64) {
	h := fh.hashes[rack]
	for _, v := range vs {
		h ^= v
		h *= fnvPrime
	}
	fh.hashes[rack] = h
}

// run drives the fleet to completion and assembles the result.
func (fb *FleetBed) run(fh *fleetHash, ops int) FleetResult {
	if fb.ran {
		panic("hbb: FleetBed workloads are single-shot; build a new fleet")
	}
	fb.ran = true
	start := time.Now()
	end := fb.fc.Run()
	wall := time.Since(start)
	topo := fb.fc.Fleet.Topology()
	g := fb.fc.Fleet.Group()
	h := uint64(fnvOffset)
	var bytes int64
	for r := 0; r < topo.Racks; r++ {
		h ^= fh.hashes[r]
		h *= fnvPrime
		bytes += fh.bytes[r]
	}
	h ^= uint64(end)
	h *= fnvPrime
	res := FleetResult{
		Nodes:       fb.fc.Nodes(),
		Racks:       topo.Racks,
		Shards:      topo.Shards,
		Ops:         ops,
		Bytes:       bytes,
		Elapsed:     end,
		Wall:        wall,
		Events:      g.Events(),
		Windows:     g.Windows(),
		Messages:    g.Messages(),
		Fingerprint: h,
	}
	if ops > 0 {
		res.EventsPerOp = float64(res.Events) / float64(ops)
	}
	res.HeapMBPerNode = metrics.SnapHeap().DeltaMBPerNode(fb.base, res.Nodes)
	fb.fillFleetMetrics()
	return res
}

// DFSIOWrite runs the fleet-scale analogue of the TestDFSIO write phase:
// every node writes filesPerNode files of fileSize bytes, each stored
// twice — once on the next node in the rack, once on a node in another
// rack — mirroring HDFS's rack-aware replica placement. Destination
// choice is arithmetic in (node, file), so the trace is identical for
// any shard or worker count.
func (fb *FleetBed) DFSIOWrite(filesPerNode int, fileSize int64) FleetResult {
	fl := fb.fc.Fleet
	topo := fl.Topology()
	racks, per := topo.Racks, topo.NodesPerRack
	nodes := racks * per
	fh := newFleetHash(racks)
	for node := 0; node < nodes; node++ {
		node := node
		rack := node / per
		fl.Env(node).Spawn(fmt.Sprintf("dfsio%d", node), func(p *sim.Proc) {
			// Stagger starts so a 10k-node fleet does not funnel every
			// first flow transition into one solver instant.
			p.Sleep(time.Duration(node%per) * 50 * time.Microsecond)
			for f := 0; f < filesPerNode; f++ {
				if per > 1 {
					primary := rack*per + (node%per+1)%per
					if err := fl.Transfer(p, node, primary, fileSize); err != nil {
						panic(err)
					}
					fh.bytes[rack] += fileSize
				}
				if racks > 1 {
					dstRack := (rack + 1 + (node*31+f*17)%(racks-1)) % racks
					secondary := dstRack*per + (node+f)%per
					if err := fl.Transfer(p, node, secondary, fileSize); err != nil {
						panic(err)
					}
					fh.bytes[rack] += fileSize
				}
				fh.fold(rack, uint64(p.Now()), uint64(node), uint64(f))
			}
		})
	}
	return fb.run(fh, nodes*filesPerNode)
}

// RunSwarm drives the Options.Swarm open-loop client population over
// the fleet: arrivals generate zipfian-addressed request payloads,
// batched per (tick, destination rack) into flow injections, until the
// configured duration of virtual time; in-flight transfers then drain.
// The returned result carries both the fleet kernel figures and the
// swarm's: achieved QPS, events per request, and heap bytes per client.
func (fb *FleetBed) RunSwarm() (SwarmResult, error) {
	if !fb.opts.Swarm.Enabled() {
		return SwarmResult{}, fmt.Errorf("hbb: RunSwarm without Options.Swarm configured")
	}
	sw, err := swarm.New(fb.opts.Swarm.config(fb.opts.Seed), fb.fc.Fleet)
	if err != nil {
		return SwarmResult{}, err
	}
	if fb.ran {
		panic("hbb: FleetBed workloads are single-shot; build a new fleet")
	}
	fb.ran = true
	sw.Start()
	start := time.Now()
	end := fb.fc.Run()
	wall := time.Since(start)
	st := sw.Stats()
	topo := fb.fc.Fleet.Topology()
	g := fb.fc.Fleet.Group()
	h := sw.Fingerprint()
	h ^= uint64(end)
	h *= fnvPrime
	res := SwarmResult{
		FleetResult: FleetResult{
			Nodes:       fb.fc.Nodes(),
			Racks:       topo.Racks,
			Shards:      topo.Shards,
			Ops:         int(st.Arrivals),
			Bytes:       st.BytesSent,
			Elapsed:     end,
			Wall:        wall,
			Events:      g.Events(),
			Windows:     g.Windows(),
			Messages:    g.Messages(),
			Fingerprint: h,
		},
		Clients:     st.Clients,
		Requests:    st.Arrivals,
		Completed:   st.Completed,
		Shed:        st.Shed,
		AchievedQPS: st.AchievedQPS,
		MaxInflight: st.MaxInflight,
	}
	if st.Arrivals > 0 {
		res.EventsPerOp = float64(res.Events) / float64(st.Arrivals)
		res.EventsPerRequest = res.EventsPerOp
	}
	heap := metrics.SnapHeap()
	res.HeapMBPerNode = heap.DeltaMBPerNode(fb.base, res.Nodes)
	res.HeapBPerClient = heap.DeltaMBPerNode(fb.base, st.Clients) * 1e6
	sw.FillMetrics(fb.reg())
	fb.fillFleetMetrics()
	return res, nil
}

// SetReferenceSolver switches the fleet between the incremental
// component-limited rate solver (default) and the reference full
// re-solve, which recomputes every active bundle on each rate event.
// Both produce identical traces; the reference exists for differential
// tests and the overload A/B benchmark.
func (fb *FleetBed) SetReferenceSolver(on bool) { fb.fc.Fleet.SetReferenceSolver(on) }

// SetBundling disables (or re-enables) same-(src,dst) leg aggregation in
// the fleet's rate solvers. Off, every transfer leg is its own solver
// entity — with SetReferenceSolver(true) this reproduces the old
// full-re-solve engine whose per-event cost tracked the outstanding-leg
// population; it is the overload-benchmark baseline, not a mid-run knob.
func (fb *FleetBed) SetBundling(on bool) { fb.fc.Fleet.SetBundling(on) }

// fillFleetMetrics publishes the fleet's solver-work counters under the
// fleet.* namespace: solver invocations and the links they water-filled.
// fleet.links.touched / fleet.resolves is the O(affected) figure tests
// assert on — constant-bounded for link-disjoint workloads no matter how
// many flows are active.
func (fb *FleetBed) fillFleetMetrics() {
	st := fb.fc.Fleet.Stats()
	reg := fb.reg()
	reg.Counter("fleet.flows").Add(st.Flows)
	reg.Counter("fleet.resolves").Add(st.Resolves)
	reg.Counter("fleet.links.touched").Add(st.LinksTouched)
}

// Metrics returns the fleet bed's registry: every workload fills the
// fleet.* solver-work counters, and RunSwarm adds the swarm.* namespace.
func (fb *FleetBed) Metrics() *metrics.Registry { return fb.reg() }

func (fb *FleetBed) reg() *metrics.Registry {
	if fb.metrics == nil {
		fb.metrics = metrics.NewRegistry()
	}
	return fb.metrics
}

// Stress runs a kitchen-sink traffic mix spanning racks: HDFS-style
// two-hop pipeline writes, burst-buffer puts (small metadata message
// plus payload to a rack-0 "server"), Lustre-style stripe fans to four
// rack-0 nodes, and small shuffle exchanges. Every fourth op per node
// takes the next class, all destinations arithmetic in (node, op), so
// the full event trace fingerprints identically at any shard and worker
// count — the cross-shard determinism stress.
func (fb *FleetBed) Stress(opsPerNode int) FleetResult {
	fl := fb.fc.Fleet
	topo := fl.Topology()
	racks, per := topo.Racks, topo.NodesPerRack
	nodes := racks * per
	fh := newFleetHash(racks)
	xfer := func(p *sim.Proc, rack, src, dst int, n int64) {
		if src == dst {
			return
		}
		if err := fl.Transfer(p, src, dst, n); err != nil {
			panic(err)
		}
		fh.bytes[rack] += n
	}
	for node := 0; node < nodes; node++ {
		node := node
		rack := node / per
		slot := node % per
		fl.Env(node).Spawn(fmt.Sprintf("stress%d", node), func(p *sim.Proc) {
			p.Sleep(time.Duration(node%11) * 7 * time.Microsecond)
			for op := 0; op < opsPerNode; op++ {
				switch op % 4 {
				case 0: // HDFS pipeline: neighbor hop, then cross-rack hop
					mid := rack*per + (slot+1)%per
					dstRack := (rack + 1 + (node+op)%maxInt(racks-1, 1)) % racks
					dst := dstRack*per + (slot+op)%per
					xfer(p, rack, node, mid, 4<<20)
					// The relay leaves from mid, which shares the source
					// rack's shard, so this process may drive it.
					xfer(p, rack, mid, dst, 4<<20)
				case 1: // burst-buffer put: metadata then payload to rack 0
					server := (node + op) % per // rack 0, any slot
					xfer(p, rack, node, server, 64<<10)
					xfer(p, rack, node, server, 8<<20)
				case 2: // Lustre stripe fan to four rack-0 "OSTs"
					for s := 0; s < 4; s++ {
						ost := (node + op + s*3) % per
						xfer(p, rack, node, ost, 1<<20)
					}
				case 3: // shuffle: three small cross-cluster exchanges
					for s := 0; s < 3; s++ {
						dst := (node*13 + op*7 + s*29 + 1) % nodes
						xfer(p, rack, node, dst, 256<<10)
					}
				}
				fh.fold(rack, uint64(p.Now()), uint64(node), uint64(op))
			}
		})
	}
	return fb.run(fh, nodes*opsPerNode)
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
