package hbb

import (
	"sync"
	"sync/atomic"
)

// expWorkers is the number of worker goroutines parallelFor spreads
// experiment cells over. 1 (the default) runs everything serially.
var expWorkers atomic.Int64

func init() { expWorkers.Store(1) }

// SetParallelism sets how many experiment cells run concurrently (bbench's
// -parallel flag). Values below 1 are clamped to 1 (serial).
//
// Parallelism never changes results: each cell builds its own Testbed whose
// discrete-event simulation is single-threaded and seeded at construction,
// so cells share no mutable state and every table is assembled in the same
// deterministic order regardless of worker count.
func SetParallelism(n int) {
	if n < 1 {
		n = 1
	}
	expWorkers.Store(int64(n))
}

// Parallelism returns the current experiment worker count.
func Parallelism() int { return int(expWorkers.Load()) }

// parallelFor runs f(i) for every i in [0, n) across min(Parallelism(), n)
// goroutines and returns when all calls finish. Each f(i) must be
// self-contained (own Testbed / sim.Env) and publish its result to index i
// of a pre-sized slice; the caller then assembles output in index order, so
// tables come out byte-identical at any worker count.
func parallelFor(n int, f func(i int)) {
	w := Parallelism()
	if w > n {
		w = n
	}
	if w <= 1 {
		for i := 0; i < n; i++ {
			f(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < w; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				f(i)
			}
		}()
	}
	wg.Wait()
}
