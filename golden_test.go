package hbb

import (
	"fmt"
	"testing"
	"time"
)

// goldenRun is the deterministic fingerprint of one backend's short DFSIO
// write+read pass: simulated durations, byte totals, and (for burst-buffer
// backends) the activity counters. Any change to the simulation that shifts
// a scheme's behaviour shows up here as a diff against the recorded seed
// values, so policy-layer refactors cannot silently change results.
type goldenRun struct {
	writeNS  int64
	readNS   int64
	bytes    int64
	stats    string // %+v of core.Stats, "" for non-buffer backends
	totalNS  int64  // full virtual time of the run, flush drain included
	localUse int64  // compute-node-local bytes after drain
}

// goldenFingerprint runs the canonical short workload for one backend.
func goldenFingerprint(t *testing.T, b Backend) goldenRun {
	t.Helper()
	return goldenFingerprintOpts(t, b, Options{Nodes: 4, Seed: 42, ChunkSize: 4 << 20})
}

// goldenFingerprintOpts is goldenFingerprint with an explicit testbed
// configuration, for goldens that pin non-default data-plane knobs.
func goldenFingerprintOpts(t *testing.T, b Backend, opts Options) goldenRun {
	t.Helper()
	tb, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	const files = 8
	const fileSize = 64 << 20
	var g goldenRun
	total := tb.Run(func(ctx *Ctx) {
		w, err := ctx.DFSIOWrite(b, "/golden", files, fileSize)
		if err != nil {
			t.Fatalf("%v write: %v", b, err)
		}
		g.writeNS = int64(w.Duration)
		r, err := ctx.DFSIORead(b, "/golden")
		if err != nil {
			t.Fatalf("%v read: %v", b, err)
		}
		g.readNS = int64(r.Duration)
		g.bytes = r.BytesInput
		ctx.DrainBurstBuffer(b)
		g.localUse = tb.LocalStorageUsed()
	})
	g.totalNS = int64(total)
	if st, ok := tb.BurstBufferStats(b); ok {
		g.stats = fmt.Sprintf("w=%d r=%d f=%d rb=%d rl=%d rlu=%d ev=%d st=%d",
			st.BytesWritten, st.BytesRead, st.BytesFlushed,
			st.ReadsBuffer, st.ReadsLocal, st.ReadsLustre,
			st.Evictions, st.WriterStalls)
	}
	return g
}

// seedGoldens are the recorded fingerprints of the five seed backends.
// Regenerate with `go test -run TestGoldenDeterminism -v` and copy the
// logged actual values ONLY when a simulation-behaviour change is
// intentional; a pure refactor must leave every value untouched.
var seedGoldens = map[string]goldenRun{
	"hdfs":   {writeNS: 523211018, readNS: 135947894, bytes: 536870912, stats: "", totalNS: 659321466, localUse: 1610612736},
	"lustre": {writeNS: 148978864, readNS: 170635068, bytes: 536870912, stats: "", totalNS: 320123408, localUse: 0},
	"bb-async": {writeNS: 136560691, readNS: 43405859, bytes: 536870912,
		stats: "w=536870912 r=536870912 f=536870912 rb=8 rl=0 rlu=0 ev=0 st=0", totalNS: 243428779, localUse: 0},
	"bb-locality": {writeNS: 137540357, readNS: 27408031, bytes: 536870912,
		stats: "w=536870912 r=536870912 f=536870912 rb=0 rl=8 rlu=0 ev=0 st=0", totalNS: 238923864, localUse: 536870912},
	"bb-sync": {writeNS: 159292889, readNS: 34313503, bytes: 536870912,
		stats: "w=536870912 r=536870912 f=536870912 rb=8 rl=0 rlu=0 ev=0 st=0", totalNS: 193645848, localUse: 0},
}

func TestGoldenDeterminism(t *testing.T) {
	for _, b := range []Backend{BackendHDFS, BackendLustre, BackendBBAsync, BackendBBLocality, BackendBBSync} {
		b := b
		t.Run(b.String(), func(t *testing.T) {
			got := goldenFingerprint(t, b)
			want, ok := seedGoldens[b.String()]
			t.Logf("actual: {writeNS: %d, readNS: %d, bytes: %d, stats: %q, totalNS: %d, localUse: %d}",
				got.writeNS, got.readNS, got.bytes, got.stats, got.totalNS, got.localUse)
			if !ok {
				t.Fatalf("no golden recorded for %v", b)
			}
			if got != want {
				t.Errorf("fingerprint drifted from seed:\n got: %+v\nwant: %+v", got, want)
			}
			_ = time.Duration(got.writeNS)
		})
	}
}

// coalescedGolden pins the coalescing stage-out pipeline's fingerprint:
// bb-async with 16 MiB blocks (so each 64 MiB golden file spans 4 blocks),
// FlushBatchBlocks=8 and one block of readahead. It guards the new data
// plane the same way seedGoldens guards the seed paths — regenerate only
// for an intentional behaviour change.
var coalescedGolden = goldenRun{writeNS: 132908661, readNS: 32461625, bytes: 536870912,
	stats: "w=536870912 r=536870912 f=536870912 rb=32 rl=0 rlu=0 ev=0 st=0", totalNS: 165409742, localUse: 0}

// flowGoldens pin the flow-streaming data plane: the same short DFSIO
// pass as the seed goldens but with Options.FlowStreaming on, so bulk
// transfers ride the analytic flow fast path in netsim instead of the
// per-packet event train. One entry per layer the flow path rewires:
// the HDFS pipeline, striped Lustre RPCs, and the burst buffer's RDMA
// chunk moves. Regenerate only for an intentional behaviour change.
var flowGoldens = map[string]goldenRun{
	"hdfs":   {writeNS: 523211018, readNS: 137415899, bytes: 536870912, stats: "", totalNS: 660789471, localUse: 1610612736},
	"lustre": {writeNS: 148269659, readNS: 151411230, bytes: 536870912, stats: "", totalNS: 300190365, localUse: 0},
	"bb-async": {writeNS: 136735445, readNS: 42673305, bytes: 536870912,
		stats: "w=536870912 r=536870912 f=536870912 rb=8 rl=0 rlu=0 ev=0 st=0", totalNS: 232633718, localUse: 0},
}

func TestGoldenFlowStreaming(t *testing.T) {
	for _, b := range []Backend{BackendHDFS, BackendLustre, BackendBBAsync} {
		b := b
		t.Run(b.String(), func(t *testing.T) {
			got := goldenFingerprintOpts(t, b, Options{
				Nodes: 4, Seed: 42, ChunkSize: 4 << 20, FlowStreaming: true,
			})
			t.Logf("actual: {writeNS: %d, readNS: %d, bytes: %d, stats: %q, totalNS: %d, localUse: %d}",
				got.writeNS, got.readNS, got.bytes, got.stats, got.totalNS, got.localUse)
			want, ok := flowGoldens[b.String()]
			if !ok {
				t.Fatalf("no flow golden recorded for %v", b)
			}
			if got != want {
				t.Errorf("fingerprint drifted:\n got: %+v\nwant: %+v", got, want)
			}
		})
	}
}

func TestGoldenCoalescing(t *testing.T) {
	got := goldenFingerprintOpts(t, BackendBBAsync, Options{
		Nodes: 4, Seed: 42, ChunkSize: 4 << 20, BlockSize: 16 << 20,
		BBFlushBatchBlocks: 8, BBReadAhead: 1,
	})
	t.Logf("actual: {writeNS: %d, readNS: %d, bytes: %d, stats: %q, totalNS: %d, localUse: %d}",
		got.writeNS, got.readNS, got.bytes, got.stats, got.totalNS, got.localUse)
	if got != coalescedGolden {
		t.Errorf("fingerprint drifted:\n got: %+v\nwant: %+v", got, coalescedGolden)
	}
}
