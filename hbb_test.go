package hbb

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"hbb/internal/dfs"
)

func newTB(t *testing.T, opts Options) *Testbed {
	t.Helper()
	if opts.Nodes == 0 {
		opts.Nodes = 4
	}
	if opts.Seed == 0 {
		opts.Seed = 99
	}
	if opts.ChunkSize == 0 {
		opts.ChunkSize = 4 << 20
	}
	tb, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	return tb
}

func TestBadOptions(t *testing.T) {
	if _, err := New(Options{Transport: "carrier-pigeon"}); err == nil {
		t.Error("unknown transport accepted")
	}
	if _, err := New(Options{Hardware: "abacus"}); err == nil {
		t.Error("unknown hardware accepted")
	}
}

func TestBackendStrings(t *testing.T) {
	want := []string{"hdfs", "lustre", "bb-async", "bb-locality", "bb-sync", "bb-adaptive"}
	for i, b := range AllBackends {
		if b.String() != want[i] {
			t.Errorf("backend %d = %q, want %q", i, b, want[i])
		}
	}
	if got := Backend(99).String(); got != "backend(99)" {
		t.Errorf("out-of-range String() = %q, want %q", got, "backend(99)")
	}
}

func TestParseBackend(t *testing.T) {
	for _, b := range AllBackends {
		got, err := ParseBackend(b.String())
		if err != nil || got != b {
			t.Errorf("ParseBackend(%q) = %v, %v; want %v", b.String(), got, err, b)
		}
	}
	if _, err := ParseBackend("bb-nonesuch"); err == nil {
		t.Error("ParseBackend accepted an unknown name")
	} else if !strings.Contains(err.Error(), "bb-adaptive") {
		t.Errorf("error %q does not list registered backends", err)
	}
}

func TestRunTwicePanics(t *testing.T) {
	tb := newTB(t, Options{})
	tb.Run(func(ctx *Ctx) {})
	defer func() {
		if recover() == nil {
			t.Error("second Run did not panic")
		}
	}()
	tb.Run(func(ctx *Ctx) {})
}

func TestWriteReadEveryBackend(t *testing.T) {
	const size = 96 << 20
	for _, b := range AllBackends {
		b := b
		t.Run(b.String(), func(t *testing.T) {
			tb := newTB(t, Options{})
			tb.Run(func(ctx *Ctx) {
				if err := ctx.WriteFile(b, 0, "/t/file", size); err != nil {
					t.Fatalf("write: %v", err)
				}
				fi, err := ctx.Stat(b, 1, "/t/file")
				if err != nil || fi.Size != size {
					t.Fatalf("stat = %+v, %v", fi, err)
				}
				n, err := ctx.ReadFile(b, 2, "/t/file")
				if err != nil || n != size {
					t.Fatalf("read = %d, %v", n, err)
				}
				if err := ctx.Delete(b, 0, "/t/file"); err != nil {
					t.Fatalf("delete: %v", err)
				}
				if _, err := ctx.Stat(b, 0, "/t/file"); !errors.Is(err, dfs.ErrNotFound) {
					t.Fatalf("stat after delete: %v", err)
				}
			})
			if dl := tb.Deadlocked(); len(dl) != 0 {
				t.Fatalf("deadlocked: %v", dl)
			}
		})
	}
}

// TestHeadlineWriteOrdering asserts the paper's fig3 shape: the async
// burst buffer out-writes Lustre, which out-writes stock HDFS.
func TestHeadlineWriteOrdering(t *testing.T) {
	const files = 16
	const fileSize = 512 << 20
	mbps := map[Backend]float64{}
	for _, b := range []Backend{BackendHDFS, BackendLustre, BackendBBAsync} {
		b := b
		tb := newTB(t, Options{Nodes: 8})
		tb.Run(func(ctx *Ctx) {
			res, err := ctx.DFSIOWrite(b, "/bench", files, fileSize)
			if err != nil {
				t.Fatalf("%v write: %v", b, err)
			}
			mbps[b] = res.AggregateMBps()
		})
	}
	h, l, bb := mbps[BackendHDFS], mbps[BackendLustre], mbps[BackendBBAsync]
	if !(bb > l && l > h) {
		t.Errorf("write ordering bb(%.0f) > lustre(%.0f) > hdfs(%.0f) violated", bb, l, h)
	}
	if bb/h < 1.8 || bb/h > 4.0 {
		t.Errorf("bb/hdfs write gain = %.2fx; paper shape is ~2.6x", bb/h)
	}
	if bb/l < 1.1 || bb/l > 2.2 {
		t.Errorf("bb/lustre write gain = %.2fx; paper shape is ~1.5x", bb/l)
	}
}

// TestHeadlineReadGain asserts the fig4 shape: buffered reads beat Lustre
// reads by a large multiple.
func TestHeadlineReadGain(t *testing.T) {
	const files = 16
	const fileSize = 512 << 20
	mbps := map[Backend]float64{}
	for _, b := range []Backend{BackendLustre, BackendBBAsync, BackendBBLocality} {
		b := b
		tb := newTB(t, Options{Nodes: 8})
		tb.Run(func(ctx *Ctx) {
			if _, err := ctx.DFSIOWrite(b, "/bench", files, fileSize); err != nil {
				t.Fatalf("%v write: %v", b, err)
			}
			res, err := ctx.DFSIORead(b, "/bench")
			if err != nil {
				t.Fatalf("%v read: %v", b, err)
			}
			mbps[b] = res.AggregateMBps()
		})
	}
	if gain := mbps[BackendBBAsync] / mbps[BackendLustre]; gain < 3 {
		t.Errorf("bb-async/lustre read gain = %.1fx; paper shape is 'up to 8x'", gain)
	}
	if gain := mbps[BackendBBLocality] / mbps[BackendLustre]; gain < 5 {
		t.Errorf("bb-locality/lustre read gain = %.1fx; paper shape is 'up to 8x'", gain)
	}
}

// TestHeadlineSortOrdering asserts the fig5 shape: burst buffer sorts
// fastest, stock HDFS second, Hadoop-on-Lustre slowest.
func TestHeadlineSortOrdering(t *testing.T) {
	const maps = 16
	const total = int64(2) << 30
	times := map[Backend]time.Duration{}
	for _, b := range []Backend{BackendHDFS, BackendLustre, BackendBBAsync} {
		b := b
		tb := newTB(t, Options{Nodes: 8})
		tb.Run(func(ctx *Ctx) {
			if _, err := ctx.RandomWriter(b, "/rw", maps, total/maps); err != nil {
				t.Fatalf("%v randomwriter: %v", b, err)
			}
			res, err := ctx.Sort(b, "/rw", "/sorted", 16)
			if err != nil {
				t.Fatalf("%v sort: %v", b, err)
			}
			times[b] = res.Duration
		})
	}
	h, l, bb := times[BackendHDFS], times[BackendLustre], times[BackendBBAsync]
	if !(bb < h && h < l) {
		t.Errorf("sort ordering bb(%v) < hdfs(%v) < lustre(%v) violated", bb, h, l)
	}
	if cut := 1 - bb.Seconds()/l.Seconds(); cut < 0.10 || cut > 0.45 {
		t.Errorf("sort cut vs lustre = %.0f%%; paper shape is ~28%%", cut*100)
	}
	if cut := 1 - bb.Seconds()/h.Seconds(); cut < 0.05 || cut > 0.40 {
		t.Errorf("sort cut vs hdfs = %.0f%%; paper shape is ~19%%", cut*100)
	}
}

func TestLocalStorageFootprint(t *testing.T) {
	const files = 8
	const fileSize = 256 << 20
	used := map[Backend]int64{}
	for _, b := range []Backend{BackendHDFS, BackendBBAsync, BackendBBLocality} {
		b := b
		tb := newTB(t, Options{})
		tb.Run(func(ctx *Ctx) {
			if _, err := ctx.DFSIOWrite(b, "/d", files, fileSize); err != nil {
				t.Fatalf("%v: %v", b, err)
			}
			ctx.DrainBurstBuffer(b)
			used[b] = tb.LocalStorageUsed()
		})
	}
	total := int64(files) * fileSize
	if used[BackendHDFS] != 3*total {
		t.Errorf("hdfs local usage = %d, want 3x dataset", used[BackendHDFS])
	}
	if used[BackendBBAsync] != 0 {
		t.Errorf("bb-async local usage = %d, want 0", used[BackendBBAsync])
	}
	if used[BackendBBLocality] != total {
		t.Errorf("bb-locality local usage = %d, want 1x dataset", used[BackendBBLocality])
	}
}

func TestFaultInjectionViaPublicAPI(t *testing.T) {
	tb := newTB(t, Options{Nodes: 6})
	tb.Run(func(ctx *Ctx) {
		if _, err := ctx.DFSIOWrite(BackendBBSync, "/d", 8, 128<<20); err != nil {
			t.Fatal(err)
		}
		ctx.FailBufferServer(BackendBBSync, 0)
		res, err := ctx.DFSIORead(BackendBBSync, "/d")
		if err != nil {
			t.Fatalf("read after server crash: %v", err)
		}
		if res.MapTasks != 8 {
			t.Errorf("read tasks = %d", res.MapTasks)
		}
	})
	st, ok := tb.BurstBufferStats(BackendBBSync)
	if !ok || st.BlocksLost != 0 {
		t.Errorf("sync scheme lost blocks: %+v", st)
	}
}

func TestConcurrentDriversWithGo(t *testing.T) {
	tb := newTB(t, Options{})
	var aDone, bDone bool
	tb.Run(func(ctx *Ctx) {
		ja := ctx.Go("a", func(c *Ctx) {
			_ = c.WriteFile(BackendBBAsync, 0, "/a", 64<<20)
			aDone = true
		})
		jb := ctx.Go("b", func(c *Ctx) {
			_ = c.WriteFile(BackendBBAsync, 1, "/b", 64<<20)
			bDone = true
		})
		ja.Wait(ctx)
		jb.Wait(ctx)
	})
	if !aDone || !bDone {
		t.Error("concurrent drivers did not finish")
	}
}

func TestDeterministicTestbeds(t *testing.T) {
	run := func() time.Duration {
		tb := newTB(t, Options{})
		var d time.Duration
		tb.Run(func(ctx *Ctx) {
			res, err := ctx.DFSIOWrite(BackendBBLocality, "/d", 8, 128<<20)
			if err != nil {
				t.Fatal(err)
			}
			d = res.Duration
		})
		return d
	}
	if a, b := run(), run(); a != b {
		t.Errorf("identical runs: %v vs %v", a, b)
	}
}

func TestExperimentRegistry(t *testing.T) {
	seen := map[string]bool{}
	for _, e := range Experiments() {
		if seen[e.ID] {
			t.Errorf("duplicate experiment id %q", e.ID)
		}
		seen[e.ID] = true
		if e.Title == "" || e.Claim == "" || e.Run == nil {
			t.Errorf("experiment %q incomplete", e.ID)
		}
	}
	if len(seen) != 19 {
		t.Errorf("%d experiments, want 19 (10 figures + 9 tables)", len(seen))
	}
	if _, ok := ExperimentByID("fig3"); !ok {
		t.Error("fig3 not found")
	}
	if _, ok := ExperimentByID("nope"); ok {
		t.Error("bogus id found")
	}
}

func TestMicrobenchExperimentsProduceTables(t *testing.T) {
	for _, id := range []string{"fig1", "fig2"} {
		e, _ := ExperimentByID(id)
		tbl := e.Run(ScaleSmall)
		if len(tbl.Rows) == 0 {
			t.Errorf("%s produced no rows", id)
		}
		if !strings.Contains(tbl.String(), id) {
			t.Errorf("%s table missing its title", id)
		}
	}
}

func TestFig1ShowsRDMAAdvantage(t *testing.T) {
	e, _ := ExperimentByID("fig1")
	tbl := e.Run(ScaleSmall)
	// Row layout: value, transport, set(µs), get(µs); RDMA rows precede
	// IPoIB rows per size. Spot-check the smallest size.
	var rdmaSet, ipoibSet string
	for _, row := range tbl.Rows {
		if row[0] == "1B" && row[1] == "rdma-fdr" {
			rdmaSet = row[2]
		}
		if row[0] == "1B" && row[1] == "ipoib-fdr" {
			ipoibSet = row[2]
		}
	}
	if rdmaSet == "" || ipoibSet == "" {
		t.Fatalf("missing rows in fig1 table:\n%s", tbl)
	}
	var r, ip float64
	if _, err := sscan(rdmaSet, &r); err != nil {
		t.Fatal(err)
	}
	if _, err := sscan(ipoibSet, &ip); err != nil {
		t.Fatal(err)
	}
	if ip < 5*r {
		t.Errorf("IPoIB 1B set (%vµs) should be >5x RDMA (%vµs)", ip, r)
	}
}

func sscan(s string, v *float64) (int, error) {
	return fmt.Sscan(s, v)
}

// TestAllExperimentsRegenerate runs every experiment at small scale so the
// harness behind bbench and EXPERIMENTS.md cannot silently rot. Roughly
// fifteen seconds of wall time; skipped under -short.
func TestAllExperimentsRegenerate(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment sweep skipped in -short mode")
	}
	for _, e := range Experiments() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			tbl := e.Run(ScaleSmall)
			if tbl == nil || len(tbl.Rows) == 0 {
				t.Fatalf("%s produced no rows", e.ID)
			}
			for i, row := range tbl.Rows {
				if len(row) != len(tbl.Columns) {
					t.Errorf("row %d has %d cells, want %d", i, len(row), len(tbl.Columns))
				}
			}
		})
	}
}

func TestReplicationViaPublicAPI(t *testing.T) {
	tb := newTB(t, Options{Nodes: 4, BBReplicas: 2, BBFlushers: 1})
	tb.Run(func(ctx *Ctx) {
		if _, err := ctx.DFSIOWrite(BackendBBAsync, "/d", 8, 64<<20); err != nil {
			t.Fatal(err)
		}
		ctx.FailBufferServer(BackendBBAsync, 0)
		res, err := ctx.DFSIORead(BackendBBAsync, "/d")
		if err != nil || res.BytesInput != 8*64<<20 {
			t.Fatalf("read after crash: %v (%d bytes)", err, res.BytesInput)
		}
	})
	st, _ := tb.BurstBufferStats(BackendBBAsync)
	if st.BlocksLost != 0 || st.Promotions == 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestPrestageViaPublicAPI(t *testing.T) {
	tb := newTB(t, Options{Nodes: 4, BBServerMemory: 1 << 30})
	tb.Run(func(ctx *Ctx) {
		// Fill well past buffer capacity so early files get evicted.
		if _, err := ctx.DFSIOWrite(BackendBBAsync, "/a", 8, 256<<20); err != nil {
			t.Fatal(err)
		}
		ctx.DrainBurstBuffer(BackendBBAsync)
		if _, err := ctx.DFSIOWrite(BackendBBAsync, "/b", 8, 512<<20); err != nil {
			t.Fatal(err)
		}
		ctx.DrainBurstBuffer(BackendBBAsync)
		ctx.Cleanup(BackendBBAsync, "/b")
		staged := 0
		for i := 0; i < 8; i++ {
			n, err := ctx.Prestage(BackendBBAsync, 0, fmt.Sprintf("/a/part-m-%05d", i))
			if err != nil {
				t.Fatalf("prestage: %v", err)
			}
			staged += n
		}
		if staged == 0 {
			t.Fatal("nothing staged despite evictions")
		}
		if _, err := ctx.Prestage(BackendHDFS, 0, "/a"); err == nil {
			t.Error("prestage on a non-buffer backend accepted")
		}
	})
	st, _ := tb.BurstBufferStats(BackendBBAsync)
	if st.Readmissions == 0 {
		t.Error("no readmissions after prestage")
	}
}

// TestFileSystemConformance runs one shared semantic contract against all
// five backends: namespace behaviour, empty files, many small files,
// sequential EOF, double-close, and error returns.
func TestFileSystemConformance(t *testing.T) {
	for _, b := range AllBackends {
		b := b
		t.Run(b.String(), func(t *testing.T) {
			tb := newTB(t, Options{})
			tb.Run(func(ctx *Ctx) {
				fs := ctx.FSFor(b)
				p := ctx.p

				// Mkdir + nested create + list ordering.
				if err := fs.Mkdir(p, 0, "/c/d"); err != nil {
					t.Fatalf("mkdir: %v", err)
				}
				for _, name := range []string{"zz", "aa", "mm"} {
					w, err := fs.Create(p, 0, "/c/d/"+name)
					if err != nil {
						t.Fatalf("create %s: %v", name, err)
					}
					if err := w.Write(p, 1<<20); err != nil {
						t.Fatalf("write: %v", err)
					}
					if err := w.Close(p); err != nil {
						t.Fatalf("close: %v", err)
					}
				}
				fis, err := fs.List(p, 1, "/c/d")
				if err != nil || len(fis) != 3 {
					t.Fatalf("list = %v, %v", fis, err)
				}
				if fis[0].Path != "/c/d/aa" || fis[2].Path != "/c/d/zz" {
					t.Errorf("list not name-ordered: %v", fis)
				}

				// Duplicate create fails; create over a directory fails.
				if _, err := fs.Create(p, 0, "/c/d/aa"); !errors.Is(err, dfs.ErrExists) {
					t.Errorf("duplicate create: %v", err)
				}
				if _, err := fs.Create(p, 0, "/c/d"); !errors.Is(err, dfs.ErrIsDir) {
					t.Errorf("create over dir: %v", err)
				}

				// Empty file round-trips.
				w, err := fs.Create(p, 2, "/c/empty")
				if err != nil {
					t.Fatalf("create empty: %v", err)
				}
				if err := w.Close(p); err != nil {
					t.Fatalf("close empty: %v", err)
				}
				fi, err := fs.Stat(p, 0, "/c/empty")
				if err != nil || fi.Size != 0 {
					t.Fatalf("stat empty = %+v, %v", fi, err)
				}
				r, err := fs.Open(p, 0, "/c/empty")
				if err != nil {
					t.Fatalf("open empty: %v", err)
				}
				if n, err := r.Read(p, 1024); err != nil || n != 0 {
					t.Errorf("read empty = %d, %v", n, err)
				}
				if err := r.Close(p); err != nil {
					t.Errorf("close reader: %v", err)
				}
				if err := r.Close(p); !errors.Is(err, dfs.ErrClosed) {
					t.Errorf("double close: %v", err)
				}

				// Sequential read hits EOF exactly at the file size.
				r2, _ := fs.Open(p, 3, "/c/d/aa")
				var total int64
				for {
					n, err := r2.Read(p, 300<<10)
					if err != nil {
						t.Fatalf("read: %v", err)
					}
					if n == 0 {
						break
					}
					total += n
				}
				if total != 1<<20 {
					t.Errorf("read %d, want 1MiB", total)
				}
				r2.Close(p)

				// Writer double close errors; write after close errors.
				w2, _ := fs.Create(p, 0, "/c/w")
				w2.Write(p, 1<<20)
				if err := w2.Close(p); err != nil {
					t.Fatalf("close: %v", err)
				}
				if err := w2.Close(p); !errors.Is(err, dfs.ErrClosed) {
					t.Errorf("double close writer: %v", err)
				}
				if err := w2.Write(p, 1); !errors.Is(err, dfs.ErrClosed) {
					t.Errorf("write after close: %v", err)
				}

				// Deleting a non-empty directory fails; files first, then ok.
				if err := fs.Delete(p, 0, "/c/d"); err == nil {
					t.Error("deleted non-empty directory")
				}
				for _, name := range []string{"zz", "aa", "mm"} {
					if err := fs.Delete(p, 0, "/c/d/"+name); err != nil {
						t.Fatalf("delete %s: %v", name, err)
					}
				}
				if err := fs.Delete(p, 0, "/c/d"); err != nil {
					t.Errorf("delete empty dir: %v", err)
				}
				if _, err := fs.Open(p, 0, "/c/d/aa"); !errors.Is(err, dfs.ErrNotFound) {
					t.Errorf("open deleted: %v", err)
				}

				// Relative paths rejected.
				if _, err := fs.Create(p, 0, "relative"); err == nil {
					t.Error("relative path accepted")
				}
				ctx.DrainBurstBuffer(b)
			})
			if dl := tb.Deadlocked(); len(dl) != 0 {
				t.Fatalf("deadlocked: %v", dl)
			}
		})
	}
}

func TestTraceOption(t *testing.T) {
	var buf strings.Builder
	tb := newTB(t, Options{Trace: &buf})
	tb.Run(func(ctx *Ctx) {
		if err := ctx.WriteFile(BackendBBAsync, 0, "/t/f", 32<<20); err != nil {
			t.Fatal(err)
		}
		if _, err := ctx.ReadFile(BackendHDFS, 0, "/missing"); err == nil {
			t.Fatal("expected miss")
		}
		ctx.DrainBurstBuffer(BackendBBAsync)
	})
	out := buf.String()
	if !strings.Contains(out, "bb-async node=0 create /t/f ok") {
		t.Errorf("trace missing create line:\n%s", out)
	}
	if !strings.Contains(out, "write /t/f (33554432 bytes) ok") {
		t.Errorf("trace missing write line:\n%s", out)
	}
	if !strings.Contains(out, "hdfs node=0 open /missing dfs:") {
		t.Errorf("trace missing error line:\n%s", out)
	}
}

// TestScale64Nodes exercises the biggest fig7 configuration end to end
// (64 compute nodes, 32 buffer servers, 128 GiB written and read).
func TestScale64Nodes(t *testing.T) {
	if testing.Short() {
		t.Skip("64-node run skipped in -short mode")
	}
	tb := newTB(t, Options{Nodes: 64, BBServers: 32})
	var wtp, rtp float64
	tb.Run(func(ctx *Ctx) {
		w, err := ctx.DFSIOWrite(BackendBBAsync, "/big", 256, 512<<20)
		if err != nil {
			t.Fatal(err)
		}
		wtp = w.AggregateMBps()
		r, err := ctx.DFSIORead(BackendBBAsync, "/big")
		if err != nil {
			t.Fatal(err)
		}
		rtp = r.AggregateMBps()
	})
	if dl := tb.Deadlocked(); len(dl) != 0 {
		t.Fatalf("deadlocked: %v", dl)
	}
	// 32 servers x 1.5 GB/s set-side = 48 GB/s ceiling; expect a healthy
	// fraction of it, and reads well above writes (one-sided GETs).
	if wtp < 15000 {
		t.Errorf("64-node write = %.0f MB/s; pool not scaling", wtp)
	}
	if rtp < wtp {
		t.Errorf("read (%.0f) below write (%.0f); RDMA read path broken", rtp, wtp)
	}
}

// TestLocalitySchemeSchedulesLocalMaps: the locality scheme's node-local
// replicas must drive the MapReduce scheduler to data-local reads, while
// the async scheme offers no locality at all.
func TestLocalitySchemeSchedulesLocalMaps(t *testing.T) {
	local := map[Backend]int{}
	for _, b := range []Backend{BackendBBAsync, BackendBBLocality} {
		b := b
		tb := newTB(t, Options{Nodes: 8})
		tb.Run(func(ctx *Ctx) {
			if _, err := ctx.DFSIOWrite(b, "/d", 32, 256<<20); err != nil {
				t.Fatal(err)
			}
			res, err := ctx.DFSIORead(b, "/d")
			if err != nil {
				t.Fatal(err)
			}
			local[b] = res.DataLocalMaps
		})
	}
	if local[BackendBBAsync] != 0 {
		t.Errorf("bb-async reported %d data-local maps; buffer data is never node-local", local[BackendBBAsync])
	}
	if local[BackendBBLocality] != 32 {
		t.Errorf("bb-locality scheduled %d/32 data-local maps", local[BackendBBLocality])
	}
}
