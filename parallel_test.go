package hbb

import (
	"sync/atomic"
	"testing"
)

func TestParallelForCoversAllIndices(t *testing.T) {
	defer SetParallelism(1)
	for _, workers := range []int{1, 3, 8} {
		SetParallelism(workers)
		const n = 100
		var hits [n]atomic.Int64
		parallelFor(n, func(i int) { hits[i].Add(1) })
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, got)
			}
		}
	}
	SetParallelism(0)
	if Parallelism() != 1 {
		t.Errorf("SetParallelism(0) should clamp to 1, got %d", Parallelism())
	}
	parallelFor(0, func(int) { t.Error("f called for n=0") })
}

// TestParallelRunsAreDeterministic reruns experiments with a worker pool
// and requires byte-identical tables: every cell owns an independent,
// seeded, single-threaded simulation, so worker count must never leak into
// results. fig1 (pure sim sweep) and fig9 (testbed + fault injection) cover
// both experiment styles cheaply.
func TestParallelRunsAreDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full experiment cells")
	}
	defer SetParallelism(1)
	for _, id := range []string{"fig1", "fig9"} {
		e, ok := ExperimentByID(id)
		if !ok {
			t.Fatalf("experiment %s missing", id)
		}
		SetParallelism(1)
		serial := e.Run(ScaleSmall).String()
		SetParallelism(4)
		parallel := e.Run(ScaleSmall).String()
		if serial != parallel {
			t.Errorf("%s: parallel output differs from serial\nserial:\n%s\nparallel:\n%s", id, serial, parallel)
		}
	}
}
