// Package hbb is a simulation-backed reproduction of "Accelerating I/O
// Performance of Big Data Analytics on HPC Clusters through RDMA-Based
// Key-Value Store" (Islam et al., ICPP 2015): an RDMA-Memcached burst
// buffer integrating HDFS with Lustre under pluggable policies — the
// paper's three schemes plus an adaptive traffic-detecting one — with
// the full substrate stack — a deterministic discrete-event kernel, an
// InfiniBand-class fabric model, HDFS, Lustre, a real memcached engine,
// and a MapReduce engine — plus the benchmark harness that regenerates
// every figure and table of the evaluation.
//
// The public entry point is a Testbed: a simulated HPC cluster with the
// storage backends of the study attached. Drive it with Run, whose
// callback executes on the virtual clock:
//
//	tb, _ := hbb.New(hbb.Options{Nodes: 8})
//	tb.Run(func(ctx *hbb.Ctx) {
//	    rep, _ := ctx.DFSIOWrite(hbb.BackendBBAsync, "/bench", 8, 1<<30)
//	    fmt.Printf("%.0f MB/s\n", rep.AggregateMBps())
//	})
package hbb

import (
	"fmt"
	"io"
	"strings"
	"time"

	"hbb/internal/cluster"
	"hbb/internal/core"
	"hbb/internal/dfs"
	"hbb/internal/hdfs"
	"hbb/internal/lustre"
	"hbb/internal/mapreduce"
	"hbb/internal/metrics"
	"hbb/internal/netsim"
	"hbb/internal/orchestrator"
	"hbb/internal/sim"
	"hbb/internal/workloads"
)

// Backend identifies a storage configuration under test. Backends live in
// a name-keyed registry (see RegisterBackend and ParseBackend); the Backend
// value is an index into it.
type Backend int

// The built-in backends: the two baselines, the paper's three burst-buffer
// schemes, and the traffic-detecting adaptive scheme.
const (
	// BackendHDFS is stock HDFS with 3-way replication on node-local
	// storage (the paper's first baseline).
	BackendHDFS Backend = iota
	// BackendLustre is direct Hadoop-over-Lustre (the second baseline).
	BackendLustre
	// BackendBBAsync is the burst buffer with asynchronous Lustre flush
	// (design axis: raw I/O performance).
	BackendBBAsync
	// BackendBBLocality is the burst buffer plus one node-local replica
	// (design axis: data-locality).
	BackendBBLocality
	// BackendBBSync is the write-through burst buffer (design axis:
	// fault-tolerance).
	BackendBBSync
	// BackendBBAdaptive is the traffic-detecting burst buffer (after Shi
	// et al.): write-through while write traffic is light, degrading to
	// asynchronous flushing under burst.
	BackendBBAdaptive
)

// backendKind selects the file-system family a backend resolves to.
type backendKind int

const (
	kindHDFS backendKind = iota
	kindLustre
	kindBurstBuffer
)

// backendDef is one registry entry; Backend values index this table.
type backendDef struct {
	name   string
	kind   backendKind
	policy string // core policy name (burst-buffer kinds only)
}

var backendDefs = []backendDef{
	{name: "hdfs", kind: kindHDFS},
	{name: "lustre", kind: kindLustre},
	{name: "bb-async", kind: kindBurstBuffer, policy: "bb-async"},
	{name: "bb-locality", kind: kindBurstBuffer, policy: "bb-locality"},
	{name: "bb-sync", kind: kindBurstBuffer, policy: "bb-sync"},
	{name: "bb-adaptive", kind: kindBurstBuffer, policy: "bb-adaptive"},
}

// AllBackends lists every registered backend in comparison order.
var AllBackends = func() []Backend {
	all := make([]Backend, len(backendDefs))
	for i := range all {
		all[i] = Backend(i)
	}
	return all
}()

// RegisterBackend adds a burst-buffer backend driven by the named core
// policy (see core.RegisterPolicy) and returns its handle. Testbeds built
// afterwards instantiate it like any built-in; it is appended to
// AllBackends. Registration must happen before New (init time, typically)
// and the name must be unused.
func RegisterBackend(name, policy string) Backend {
	if name == "" {
		panic("hbb: RegisterBackend with empty name")
	}
	for _, d := range backendDefs {
		if d.name == name {
			panic(fmt.Sprintf("hbb: backend %q already registered", name))
		}
	}
	backendDefs = append(backendDefs, backendDef{name: name, kind: kindBurstBuffer, policy: policy})
	b := Backend(len(backendDefs) - 1)
	AllBackends = append(AllBackends, b)
	return b
}

// BackendNames lists the registered backend names in registry order.
func BackendNames() []string {
	names := make([]string, len(backendDefs))
	for i, d := range backendDefs {
		names[i] = d.name
	}
	return names
}

// ParseBackend resolves a backend by its report label, erroring with the
// registered names on an unknown one.
func ParseBackend(name string) (Backend, error) {
	for i, d := range backendDefs {
		if d.name == name {
			return Backend(i), nil
		}
	}
	return 0, fmt.Errorf("hbb: unknown backend %q (registered: %s)", name, strings.Join(BackendNames(), ", "))
}

// String returns the backend's report label.
func (b Backend) String() string {
	if b >= 0 && int(b) < len(backendDefs) {
		return backendDefs[b].name
	}
	return fmt.Sprintf("backend(%d)", int(b))
}

// Transport selects the fabric profile.
type Transport string

// Supported transports.
const (
	TransportRDMA   Transport = "rdma"
	TransportIPoIB  Transport = "ipoib"
	Transport10GigE Transport = "10gige"
	Transport1GigE  Transport = "1gige"
)

func (t Transport) profile() (netsim.Profile, error) {
	switch t {
	case "", TransportRDMA:
		return netsim.RDMA, nil
	case TransportIPoIB:
		return netsim.IPoIB, nil
	case Transport10GigE:
		return netsim.TenGigE, nil
	case Transport1GigE:
		return netsim.GigE, nil
	default:
		return netsim.Profile{}, fmt.Errorf("hbb: unknown transport %q", t)
	}
}

// Hardware selects the compute-node profile.
type Hardware string

// Supported hardware profiles.
const (
	// HardwareHPCLocal mirrors an OSU-RI-like node (RAM disk + SSD + HDD).
	HardwareHPCLocal Hardware = "hpc-local"
	// HardwareDiskless mirrors a Stampede-like node (RAM disk only).
	HardwareDiskless Hardware = "diskless"
)

func (h Hardware) spec() (cluster.HardwareSpec, error) {
	switch h {
	case "", HardwareHPCLocal:
		return cluster.HPCLocalHardware(), nil
	case HardwareDiskless:
		return cluster.DisklessHardware(), nil
	default:
		return cluster.HardwareSpec{}, fmt.Errorf("hbb: unknown hardware %q", h)
	}
}

// Options configures a testbed. Zero values select the defaults used
// throughout the evaluation (8 nodes, RDMA fabric, HPC-local hardware).
type Options struct {
	// Nodes is the compute-node count. Zero defaults to 8.
	Nodes int
	// RacksOf groups nodes into racks. Zero means 16 per rack.
	RacksOf int
	// Transport picks the fabric. When it is RDMA, stock-Hadoop traffic
	// (HDFS pipelines, NameNode RPCs, the MapReduce shuffle) automatically
	// runs over an IPoIB legacy path on the same fabric — sockets cannot
	// use verbs — while the burst buffer and Lustre use native RDMA, as in
	// the paper's deployments. Set DisableLegacy to give every byte the
	// native transport.
	Transport Transport
	// DisableLegacy turns off the IPoIB legacy path for Hadoop traffic.
	DisableLegacy bool
	// Hardware picks the node profile.
	Hardware Hardware
	// Seed fixes the simulation's random stream.
	Seed int64
	// BlockSize is the file block size for HDFS and the burst buffer.
	// Zero defaults to 128 MiB.
	BlockSize int64
	// Replication is HDFS's replica count. Zero defaults to 3.
	Replication int
	// LustreOSTs and LustreStripeCount size the parallel FS. Zero
	// defaults to 8 OSTs, stripe 4.
	LustreOSTs        int
	LustreStripeCount int
	// BBServers, BBServerMemory, and BBFlushers size the burst buffer.
	// Zeros default to 4 servers × 16 GiB × 4 flushers.
	BBServers      int
	BBServerMemory int64
	BBFlushers     int
	// BBReplicas stores each block on this many buffer servers (default
	// 1); with 2+ a server crash promotes a surviving replica instead of
	// opening a loss window.
	BBReplicas int
	// BBReadmitOnRead re-admits Lustre-read blocks into the buffer as
	// clean cache fills.
	BBReadmitOnRead bool
	// BBFlushBatchBlocks enables the coalescing stage-out scheduler when
	// > 1: dirty blocks are grouped by file and runs of up to this many
	// adjacent blocks drain to Lustre as one object (one Create + one
	// metadata round-trip per run), with eviction-pressure work
	// prioritized. Zero or 1 keeps the seed one-object-per-block drain.
	BBFlushBatchBlocks int
	// BBFlushConcurrency overrides BBFlushers as the per-server flusher
	// count when positive — together with BBFlushBatchBlocks it bounds
	// in-flight flush bytes per server.
	BBFlushConcurrency int
	// BBReadAhead prefetches this many whole blocks ahead of a streaming
	// reader (source choice + fetch overlap with delivery). Zero disables.
	BBReadAhead int
	// BBBrickGiB is the burst-buffer pool's capacity granule in GiB:
	// buffer instances and orchestrated multi-job allocations are granted
	// whole bricks per server (ServerMemory/brick bricks each). It does
	// not affect the default single-tenant path. Zero defaults to 1 GiB.
	BBBrickGiB int
	// BBSched selects the buffer orchestrator's queue discipline: "fcfs"
	// (default; strict arrival order) or "backfill" (later requests that
	// fit may jump a blocked queue head).
	BBSched string
	// ChunkSize sets the streaming granularity (packets, KV items,
	// stripes). Zero defaults to 1 MiB; large experiments may raise it to
	// 4–8 MiB to reduce event counts without changing outcomes.
	ChunkSize int64
	// FlowStreaming routes every bulk data path — HDFS pipelines and read
	// streams, burst-buffer RDMA transfers, Lustre stripe RPCs, and the
	// MapReduce shuffle — over the netsim flow fast path: analytic
	// max-min-fair transfers re-solved only on flow transitions instead
	// of per-packet event trains. Off by default; results shift slightly
	// because flow-level modelling amortizes per-packet software overhead.
	FlowStreaming bool
	// FleetMode selects the datacenter-scale flow-only testbed built by
	// NewFleet: memory-lean nodes, rack topology, no backend stacks.
	// Testbed constructors ignore it; it exists so CLI front-ends can
	// carry the mode choice in one Options value.
	FleetMode bool
	// SimShards partitions a fleet's racks across this many DES event
	// heaps, advanced in conservative lookahead windows on multiple
	// cores. Any value yields the identical event trace; more shards buy
	// wall-clock speed on multi-core hosts. Zero defaults to 1 (a single
	// heap, the reference trace). Ignored outside fleet mode.
	SimShards int
	// Swarm attaches an open-loop client swarm to a fleet run: millions
	// of clients as compact records generating target-QPS zipfian load
	// (see FleetBed.RunSwarm). Requires FleetMode; the zero value leaves
	// swarm load off.
	Swarm SwarmOptions
	// Trace, when non-nil, logs every file-system operation of every
	// backend (virtual timestamp, duration, node, op, outcome) to the
	// writer — a debugging aid for workload authors.
	Trace io.Writer
}

func (o Options) withDefaults() Options {
	if o.Nodes == 0 {
		o.Nodes = 8
	}
	if o.RacksOf == 0 {
		o.RacksOf = 16
	}
	if o.BlockSize == 0 {
		o.BlockSize = 128 << 20
	}
	if o.Replication == 0 {
		o.Replication = 3
	}
	if o.LustreOSTs == 0 {
		o.LustreOSTs = 8
	}
	if o.LustreStripeCount == 0 {
		o.LustreStripeCount = 4
	}
	if o.BBServers == 0 {
		o.BBServers = 4
	}
	if o.BBServerMemory == 0 {
		o.BBServerMemory = 16 << 30
	}
	if o.BBFlushers == 0 {
		o.BBFlushers = 4
	}
	if o.ChunkSize == 0 {
		o.ChunkSize = 1 << 20
	}
	return o
}

// Testbed is a simulated cluster with every backend of the study attached.
type Testbed struct {
	opts    Options
	cluster *cluster.Cluster
	lustre  *lustre.Lustre
	hdfs    *hdfs.HDFS
	bb      map[Backend]*core.BurstFS
	orch    map[Backend]*orchestrator.Scheduler
	traced  map[Backend]dfs.FileSystem
	ran     bool
}

// New builds a testbed. Every backend is instantiated over one shared
// cluster and fabric: HDFS datanodes on the compute nodes, the Lustre
// servers and burst-buffer servers on dedicated fabric nodes.
func New(opts Options) (*Testbed, error) {
	opts = opts.withDefaults()
	prof, err := opts.Transport.profile()
	if err != nil {
		return nil, err
	}
	hw, err := opts.Hardware.spec()
	if err != nil {
		return nil, err
	}
	if _, err := orchestrator.ParseSchedPolicy(opts.BBSched); err != nil {
		return nil, err
	}
	if opts.Swarm.Enabled() {
		return nil, fmt.Errorf("hbb: swarm load requires FleetMode (build with NewFleet, or bbrun -fleet -swarm)")
	}
	var legacy *netsim.Profile
	if prof.OneSided && !opts.DisableLegacy {
		ipoib := netsim.IPoIB
		legacy = &ipoib
	}
	cl := cluster.New(cluster.Config{
		Nodes:     opts.Nodes,
		RacksOf:   opts.RacksOf,
		Transport: prof,
		Legacy:    legacy,
		Hardware:  hw,
		Seed:      opts.Seed,
	})
	tb := &Testbed{
		opts:    opts,
		cluster: cl,
		bb:      make(map[Backend]*core.BurstFS),
		orch:    make(map[Backend]*orchestrator.Scheduler),
	}
	if opts.FlowStreaming {
		cl.Net.EnableFlowBulk() // shuffle and other knobless bulk users
	}
	tb.lustre = lustre.New(cl, lustre.Config{
		OSTs:          opts.LustreOSTs,
		StripeCount:   opts.LustreStripeCount,
		StripeSize:    opts.ChunkSize,
		FlowStreaming: opts.FlowStreaming,
	})
	tb.hdfs, err = hdfs.New(cl, hdfs.Config{
		BlockSize:     opts.BlockSize,
		Replication:   opts.Replication,
		PacketSize:    opts.ChunkSize,
		FlowStreaming: opts.FlowStreaming,
	})
	if err != nil {
		return nil, err
	}
	// Registry order is fixed: fabric node IDs and spawn order must not
	// depend on map iteration, or runs would stop being reproducible.
	// Backends registered after the built-ins come last, so they cannot
	// perturb the built-ins' node IDs.
	for i, d := range backendDefs {
		if d.kind != kindBurstBuffer {
			continue
		}
		tb.bb[Backend(i)] = core.New(cl, tb.lustre, core.Config{
			Policy:           d.policy,
			Servers:          opts.BBServers,
			ServerMemory:     opts.BBServerMemory,
			BlockSize:        opts.BlockSize,
			ItemChunk:        opts.ChunkSize,
			Flushers:         opts.BBFlushers,
			BufferReplicas:   opts.BBReplicas,
			ReadmitOnRead:    opts.BBReadmitOnRead,
			FlushBatchBlocks: opts.BBFlushBatchBlocks,
			FlushConcurrency: opts.BBFlushConcurrency,
			ReadAhead:        opts.BBReadAhead,
			FlowStreaming:    opts.FlowStreaming,
			BrickSize:        int64(opts.BBBrickGiB) << 30,
		})
	}
	tb.traced = make(map[Backend]dfs.FileSystem)
	if opts.Trace != nil {
		for _, b := range AllBackends {
			tb.traced[b] = dfs.Traced(tb.rawFS(b), opts.Trace)
		}
	}
	return tb, nil
}

// Options returns the effective options.
func (tb *Testbed) Options() Options { return tb.opts }

// fs resolves a backend to its file system (trace-wrapped when enabled).
func (tb *Testbed) fs(b Backend) dfs.FileSystem {
	if wrapped, ok := tb.traced[b]; ok {
		return wrapped
	}
	return tb.rawFS(b)
}

func (tb *Testbed) rawFS(b Backend) dfs.FileSystem {
	switch backendDefs[b].kind {
	case kindHDFS:
		return tb.hdfs
	case kindLustre:
		return tb.lustre
	default:
		return tb.bb[b]
	}
}

// Run starts all services, executes fn as the driver process on the
// virtual clock, shuts the services down, and drains the simulation. It
// returns the total virtual time. A testbed can be run once.
func (tb *Testbed) Run(fn func(ctx *Ctx)) time.Duration {
	if tb.ran {
		panic("hbb: Testbed.Run called twice; build a fresh testbed per run")
	}
	tb.ran = true
	tb.hdfs.Start()
	for _, b := range AllBackends {
		if fs, ok := tb.bb[b]; ok {
			fs.Start()
		}
	}
	tb.cluster.Env.Spawn("hbb.driver", func(p *sim.Proc) {
		defer func() {
			tb.hdfs.Shutdown()
			for _, b := range AllBackends {
				if fs, ok := tb.bb[b]; ok {
					fs.Shutdown()
				}
			}
		}()
		fn(&Ctx{tb: tb, p: p})
	})
	return tb.cluster.Env.Run()
}

// Deadlocked reports processes left blocked after Run (test hook; a clean
// run reports none).
func (tb *Testbed) Deadlocked() []string { return tb.cluster.Env.Deadlocked() }

// HDFSStats returns the HDFS data-plane counters.
func (tb *Testbed) HDFSStats() hdfs.Stats { return tb.hdfs.Stats() }

// LustreStats returns the Lustre data-plane counters.
func (tb *Testbed) LustreStats() lustre.Stats { return tb.lustre.Stats() }

// BurstBufferStats returns a burst-buffer backend's counters.
func (tb *Testbed) BurstBufferStats(b Backend) (core.Stats, bool) {
	fs, ok := tb.bb[b]
	if !ok {
		return core.Stats{}, false
	}
	return fs.Stats(), true
}

// BurstBufferMetrics returns a burst-buffer backend's metrics registry
// (flush-latency and writer-stall histograms, read-source and policy
// counters).
func (tb *Testbed) BurstBufferMetrics(b Backend) (*metrics.Registry, bool) {
	fs, ok := tb.bb[b]
	if !ok {
		return nil, false
	}
	return fs.Metrics(), true
}

// BufferOrchestrator returns (creating on first use) the capacity
// scheduler that hands out buffer instances from a burst-buffer backend's
// brick inventory, with the queue discipline Options.BBSched selects.
// Multi-job experiments submit orchestrator.Requests to it and run each
// job against the granted allocation's instance file system.
func (tb *Testbed) BufferOrchestrator(b Backend) (*orchestrator.Scheduler, error) {
	fs, ok := tb.bb[b]
	if !ok {
		return nil, fmt.Errorf("hbb: %v is not a burst-buffer backend", b)
	}
	if s, ok := tb.orch[b]; ok {
		return s, nil
	}
	pol, err := orchestrator.ParseSchedPolicy(tb.opts.BBSched)
	if err != nil {
		return nil, err
	}
	s := orchestrator.New(tb.cluster, fs, pol)
	tb.orch[b] = s
	return s, nil
}

// NetworkMetrics exposes the fabric's registry: per-transport bytes
// moved, flow counts, and flow-solver re-solves.
func (tb *Testbed) NetworkMetrics() *metrics.Registry {
	return tb.cluster.Net.Metrics()
}

// LocalStorageUsed reports bytes of compute-node-local storage in use.
func (tb *Testbed) LocalStorageUsed() int64 {
	var total int64
	for _, n := range tb.cluster.Nodes {
		total += n.LocalUsed()
	}
	return total
}

// Ctx is the driver-side handle passed to Run's callback. All its methods
// charge virtual time on the simulation clock.
type Ctx struct {
	tb *Testbed
	p  *sim.Proc
}

// Now returns the current virtual time.
func (c *Ctx) Now() time.Duration { return c.p.Now() }

// Sleep advances the driver by d of virtual time.
func (c *Ctx) Sleep(d time.Duration) { c.p.Sleep(d) }

// Testbed returns the owning testbed.
func (c *Ctx) Testbed() *Testbed { return c.tb }

// WriteFile writes one file of the given size from a node.
func (c *Ctx) WriteFile(b Backend, node int, path string, size int64) error {
	fs := c.tb.fs(b)
	w, err := fs.Create(c.p, netsim.NodeID(node), path)
	if err != nil {
		return err
	}
	if err := w.Write(c.p, size); err != nil {
		return err
	}
	return w.Close(c.p)
}

// ReadFile reads a whole file from a node, returning its size.
func (c *Ctx) ReadFile(b Backend, node int, path string) (int64, error) {
	fs := c.tb.fs(b)
	r, err := fs.Open(c.p, netsim.NodeID(node), path)
	if err != nil {
		return 0, err
	}
	defer r.Close(c.p)
	var total int64
	for {
		n, err := r.Read(c.p, 8<<20)
		if err != nil {
			return total, err
		}
		if n == 0 {
			return total, nil
		}
		total += n
	}
}

// Stat returns file metadata.
func (c *Ctx) Stat(b Backend, node int, path string) (dfs.FileInfo, error) {
	return c.tb.fs(b).Stat(c.p, netsim.NodeID(node), path)
}

// Delete removes a file or empty directory.
func (c *Ctx) Delete(b Backend, node int, path string) error {
	return c.tb.fs(b).Delete(c.p, netsim.NodeID(node), path)
}

// DFSIOWrite runs the TestDFSIO write phase on a backend.
func (c *Ctx) DFSIOWrite(b Backend, dir string, files int, fileSize int64) (workloads.DFSIOResult, error) {
	return workloads.DFSIOWrite(c.p, c.tb.cluster, c.tb.fs(b), dir, files, fileSize)
}

// DFSIORead runs the TestDFSIO read phase on a backend.
func (c *Ctx) DFSIORead(b Backend, dir string) (workloads.DFSIOResult, error) {
	return workloads.DFSIORead(c.p, c.tb.cluster, c.tb.fs(b), dir)
}

// RandomWriter generates maps × bytesPerMap of random records.
func (c *Ctx) RandomWriter(b Backend, dir string, maps int, bytesPerMap int64) (mapreduce.Result, error) {
	return workloads.RandomWriter(c.p, c.tb.cluster, c.tb.fs(b), dir, maps, bytesPerMap)
}

// Sort sorts the files under inDir into outDir.
func (c *Ctx) Sort(b Backend, inDir, outDir string, reducers int) (mapreduce.Result, error) {
	fs := c.tb.fs(b)
	return workloads.Sort(c.p, c.tb.cluster, fs, inDir, fs, outDir, reducers)
}

// Scan runs the I/O-intensive filter workload.
func (c *Ctx) Scan(b Backend, dir, outDir string, selectivity float64) (mapreduce.Result, error) {
	fs := c.tb.fs(b)
	return workloads.Scan(c.p, c.tb.cluster, fs, dir, fs, outDir, selectivity)
}

// RunJob executes an arbitrary MapReduce job (advanced use).
func (c *Ctx) RunJob(job mapreduce.Job) (mapreduce.Result, error) {
	return mapreduce.Run(c.p, c.tb.cluster, job)
}

// SubmitJob starts a MapReduce job without blocking the driver; the
// returned submission's Wait rendezvouses with its result. Several
// submissions contend for cluster slots, buffer bricks, and Lustre
// bandwidth concurrently — the multi-tenant shape of a busy cluster.
func (c *Ctx) SubmitJob(job mapreduce.Job) *mapreduce.Submission {
	return mapreduce.Submit(c.tb.cluster, job)
}

// BufferOrchestrator returns the backend's buffer-instance capacity
// scheduler (see Testbed.BufferOrchestrator).
func (c *Ctx) BufferOrchestrator(b Backend) (*orchestrator.Scheduler, error) {
	return c.tb.BufferOrchestrator(b)
}

// FSFor exposes the dfs.FileSystem of a backend for jobs built with
// RunJob.
func (c *Ctx) FSFor(b Backend) dfs.FileSystem { return c.tb.fs(b) }

// Cleanup removes a flat benchmark directory.
func (c *Ctx) Cleanup(b Backend, dir string) {
	workloads.Cleanup(c.p, c.tb.cluster, c.tb.fs(b), dir)
}

// DrainBurstBuffer waits until a burst-buffer backend has flushed all
// dirty data to Lustre.
func (c *Ctx) DrainBurstBuffer(b Backend) {
	if fs, ok := c.tb.bb[b]; ok {
		fs.DrainFlushers(c.p)
	}
}

// Prestage pulls a file's evicted blocks from Lustre back into a
// burst-buffer backend ahead of a job (burst-buffer stage-in), returning
// the number of blocks staged.
func (c *Ctx) Prestage(b Backend, node int, path string) (int, error) {
	fs, ok := c.tb.bb[b]
	if !ok {
		return 0, fmt.Errorf("hbb: %v is not a burst-buffer backend", b)
	}
	return fs.Prestage(c.p, netsim.NodeID(node), path)
}

// Join is a handle to a concurrent driver task started with Ctx.Go.
type Join struct{ done sim.Event }

// Wait blocks the calling context until the task finishes.
func (j *Join) Wait(c *Ctx) { j.done.Wait(c.p) }

// Go runs fn as a concurrent driver-side process sharing the testbed (for
// overlapping workloads); the returned Join rendezvouses with it.
func (c *Ctx) Go(name string, fn func(c2 *Ctx)) *Join {
	j := &Join{}
	c.tb.cluster.Env.Spawn(name, func(p *sim.Proc) {
		defer j.done.Trigger()
		fn(&Ctx{tb: c.tb, p: p})
	})
	return j
}

// FailNode crashes a compute node: fabric down, HDFS DataNode dead.
func (c *Ctx) FailNode(node int) {
	c.tb.hdfs.FailDataNode(netsim.NodeID(node))
}

// FailBufferServer crashes one burst-buffer server of a backend.
func (c *Ctx) FailBufferServer(b Backend, index int) {
	if fs, ok := c.tb.bb[b]; ok {
		fs.FailServer(index)
	}
}
